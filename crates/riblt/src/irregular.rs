//! Irregular Rateless IBLT (paper §8).
//!
//! The regular design maps *every* source symbol with the same probability
//! function ρ(i) = 1/(1 + 0.5·i). The irregular variant partitions source
//! symbols into `c` classes by hash; class `j` gets its own parameter α_j
//! and a weight w_j (the probability a random symbol lands in it). With the
//! configuration found by the paper's search (c = 3, w = 0.18/0.56/0.26,
//! α = 0.11/0.68/0.82) the asymptotic communication overhead drops from
//! 1.35 to ≈1.10, at the cost of ≈1.9× slower encoding/decoding (the
//! non-0.5 α values need `powf` instead of a square root).
//!
//! The API mirrors the regular one: [`IrregularSketch`] for one-shot
//! reconciliation, [`IrregularEncoder`] / [`IrregularDecoder`] for the
//! streaming protocol.

use riblt_hash::{splitmix64, SipKey};

use crate::coded::{prefetch, CodedSymbol, Direction, PeelState};
use crate::decoder::SetDifference;
use crate::encoder::CodingWindow;
use crate::error::{Error, Result};
use crate::mapping::IndexMapping;
use crate::symbol::{HashedSymbol, Symbol};

/// Partition of source symbols into classes with per-class mapping
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IrregularClasses {
    weights: Vec<f64>,
    alphas: Vec<f64>,
    /// Cumulative weights scaled to the u64 range, used for hash-based class
    /// selection.
    thresholds: Vec<u64>,
}

impl IrregularClasses {
    /// Creates a class configuration. `weights` must sum to ≈1 and match
    /// `alphas` in length; every α must be positive.
    pub fn new(weights: &[f64], alphas: &[f64]) -> Self {
        assert_eq!(
            weights.len(),
            alphas.len(),
            "weights/alphas length mismatch"
        );
        assert!(!weights.is_empty(), "at least one class is required");
        let total: f64 = weights.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "class weights must sum to 1 (got {total})"
        );
        assert!(alphas.iter().all(|&a| a > 0.0), "alphas must be positive");
        let mut thresholds = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            acc += w;
            let t = (acc.min(1.0) * u64::MAX as f64) as u64;
            thresholds.push(t);
        }
        // Guard against floating-point shortfall on the last boundary.
        *thresholds.last_mut().unwrap() = u64::MAX;
        IrregularClasses {
            weights: weights.to_vec(),
            alphas: alphas.to_vec(),
            thresholds,
        }
    }

    /// The configuration found by the paper's brute-force search (§8):
    /// overhead → 1.10 as d → ∞.
    pub fn paper_optimal() -> Self {
        Self::new(&[0.18, 0.56, 0.26], &[0.11, 0.68, 0.82])
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.alphas.len()
    }

    /// Class weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Per-class mapping parameters.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// The class a symbol with checksum hash `hash` belongs to.
    ///
    /// Class membership is derived from an *independent* mix of the hash so
    /// that it does not correlate with the index-mapping PRNG, which is
    /// seeded with the hash itself.
    pub fn class_of(&self, hash: u64) -> usize {
        let selector = splitmix64(hash ^ 0x1bd1_1bda_a9fc_1a22);
        self.thresholds
            .iter()
            .position(|&t| selector <= t)
            .unwrap_or(self.thresholds.len() - 1)
    }

    /// The mapping parameter used for a symbol with hash `hash`.
    pub fn alpha_of(&self, hash: u64) -> f64 {
        self.alphas[self.class_of(hash)]
    }
}

impl Default for IrregularClasses {
    fn default() -> Self {
        Self::paper_optimal()
    }
}

/// Fixed-size sketch using per-class mapping parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct IrregularSketch<S: Symbol> {
    cells: Vec<CodedSymbol<S>>,
    classes: IrregularClasses,
    key: SipKey,
}

impl<S: Symbol> IrregularSketch<S> {
    /// Creates an empty sketch of `m` coded symbols with the paper's optimal
    /// class configuration.
    pub fn new(m: usize) -> Self {
        Self::with_classes(m, IrregularClasses::paper_optimal(), SipKey::default())
    }

    /// Creates an empty sketch with explicit classes and key.
    pub fn with_classes(m: usize, classes: IrregularClasses, key: SipKey) -> Self {
        IrregularSketch {
            cells: vec![CodedSymbol::default(); m],
            classes,
            key,
        }
    }

    /// Number of coded symbols.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the sketch has no coded symbols.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read-only view of the coded symbols.
    pub fn cells(&self) -> &[CodedSymbol<S>] {
        &self.cells
    }

    fn apply(&mut self, hashed: &HashedSymbol<S>, direction: Direction) {
        let m = self.cells.len() as u64;
        let alpha = self.classes.alpha_of(hashed.hash);
        let mut mapping = IndexMapping::with_alpha(hashed.hash, alpha);
        loop {
            let idx = mapping.current_index();
            if idx >= m {
                break;
            }
            self.cells[idx as usize].apply(hashed, direction);
            mapping.advance();
        }
    }

    /// Mixes one item into the sketch.
    pub fn add_symbol(&mut self, symbol: &S) {
        let hashed = HashedSymbol::new(symbol.clone(), self.key);
        self.apply(&hashed, Direction::Add);
    }

    /// Removes one item from the sketch.
    pub fn remove_symbol(&mut self, symbol: &S) {
        let hashed = HashedSymbol::new(symbol.clone(), self.key);
        self.apply(&hashed, Direction::Remove);
    }

    /// Subtracts another sketch cell-by-cell (linearity).
    pub fn subtract(&mut self, other: &IrregularSketch<S>) -> Result<()> {
        if self.cells.len() != other.cells.len() || self.classes != other.classes {
            return Err(Error::SketchShapeMismatch {
                left: self.cells.len(),
                right: other.cells.len(),
            });
        }
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            a.subtract(b);
        }
        Ok(())
    }

    /// Returns `self ⊖ other`.
    pub fn subtracted(&self, other: &IrregularSketch<S>) -> Result<IrregularSketch<S>> {
        let mut out = self.clone();
        out.subtract(other)?;
        Ok(out)
    }

    /// Peels the sketch, recovering the encoded difference.
    pub fn decode(&self) -> Result<SetDifference<S>> {
        let mut cells = self.cells.clone();
        let m = cells.len() as u64;
        let mut queue: Vec<usize> = (0..cells.len())
            .filter(|&i| {
                matches!(
                    cells[i].peel_state(self.key),
                    PeelState::PureRemote | PeelState::PureLocal
                )
            })
            .collect();
        let mut diff = SetDifference::default();
        while let Some(idx) = queue.pop() {
            let state = cells[idx].peel_state(self.key);
            let is_remote = match state {
                PeelState::PureRemote => true,
                PeelState::PureLocal => false,
                _ => continue,
            };
            let symbol = cells[idx].sum.clone();
            let hash = cells[idx].checksum;
            let hashed = HashedSymbol::with_hash(symbol.clone(), hash);
            let direction = if is_remote {
                Direction::Remove
            } else {
                Direction::Add
            };
            let alpha = self.classes.alpha_of(hash);
            let mut mapping = IndexMapping::with_alpha(hash, alpha);
            loop {
                let i = mapping.current_index();
                if i >= m {
                    break;
                }
                cells[i as usize].apply(&hashed, direction);
                if matches!(
                    cells[i as usize].peel_state(self.key),
                    PeelState::PureRemote | PeelState::PureLocal
                ) {
                    queue.push(i as usize);
                }
                mapping.advance();
            }
            if is_remote {
                diff.remote_only.push(symbol);
            } else {
                diff.local_only.push(symbol);
            }
        }
        if cells.iter().all(|c| c.is_empty_cell()) {
            Ok(diff)
        } else {
            Err(Error::DecodeIncomplete)
        }
    }
}

/// Streaming encoder with per-class mapping parameters.
#[derive(Debug, Clone)]
pub struct IrregularEncoder<S: Symbol> {
    window: CodingWindow<S>,
    classes: IrregularClasses,
}

impl<S: Symbol> IrregularEncoder<S> {
    /// Creates an encoder with the paper's optimal class configuration.
    pub fn new() -> Self {
        Self::with_classes(IrregularClasses::paper_optimal(), SipKey::default())
    }

    /// Creates an encoder with explicit classes and checksum key.
    pub fn with_classes(classes: IrregularClasses, key: SipKey) -> Self {
        IrregularEncoder {
            window: CodingWindow::new(key, crate::mapping::DEFAULT_ALPHA),
            classes,
        }
    }

    /// Number of source symbols added.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True if the encoder holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.window.len() == 0
    }

    /// Adds a source symbol; rejected once coded symbols have been produced.
    pub fn add_symbol(&mut self, symbol: S) -> Result<()> {
        if self.window.next_index() != 0 {
            return Err(Error::SymbolAddedAfterEncodingStarted);
        }
        let hashed = HashedSymbol::new(symbol, self.window.key());
        let alpha = self.classes.alpha_of(hashed.hash);
        self.window.push_fresh_with_alpha(hashed, alpha);
        Ok(())
    }

    /// Index of the next coded symbol to be produced.
    pub fn next_index(&self) -> u64 {
        self.window.next_index()
    }

    /// Produces the next coded symbol of the infinite sequence.
    pub fn produce_next_coded_symbol(&mut self) -> CodedSymbol<S> {
        let mut cs = CodedSymbol::new();
        self.window.apply_next(&mut cs, Direction::Add);
        cs
    }

    /// Produces the next `n` coded symbols.
    pub fn produce_coded_symbols(&mut self, n: usize) -> Vec<CodedSymbol<S>> {
        (0..n).map(|_| self.produce_next_coded_symbol()).collect()
    }
}

impl<S: Symbol> Default for IrregularEncoder<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Streaming decoder with per-class mapping parameters.
#[derive(Debug, Clone)]
pub struct IrregularDecoder<S: Symbol> {
    coded: Vec<CodedSymbol<S>>,
    /// Per-cell flag: true while the cell sits in `pure_queue`. Queue
    /// entries are unverified *candidates* (`count` hit ±1); purity is
    /// checked with a single hash at pop time, mirroring [`crate::Decoder`].
    queued: Vec<bool>,
    /// Cached termination flag, refreshed once per ingested symbol.
    decoded: bool,
    local_set: CodingWindow<S>,
    remote_recovered: CodingWindow<S>,
    local_recovered: CodingWindow<S>,
    pure_queue: Vec<usize>,
    classes: IrregularClasses,
    key: SipKey,
}

impl<S: Symbol> IrregularDecoder<S> {
    /// Creates a decoder with the paper's optimal class configuration.
    pub fn new() -> Self {
        Self::with_classes(IrregularClasses::paper_optimal(), SipKey::default())
    }

    /// Creates a decoder with explicit classes and checksum key (must match
    /// the encoder's).
    pub fn with_classes(classes: IrregularClasses, key: SipKey) -> Self {
        let alpha = crate::mapping::DEFAULT_ALPHA;
        IrregularDecoder {
            coded: Vec::new(),
            queued: Vec::new(),
            decoded: false,
            local_set: CodingWindow::new(key, alpha),
            remote_recovered: CodingWindow::new(key, alpha),
            local_recovered: CodingWindow::new(key, alpha),
            pure_queue: Vec::new(),
            classes,
            key,
        }
    }

    /// Number of coded symbols ingested.
    pub fn coded_symbols_received(&self) -> usize {
        self.coded.len()
    }

    /// Adds a local-set symbol (before any coded symbol is ingested).
    pub fn add_symbol(&mut self, symbol: S) -> Result<()> {
        if !self.coded.is_empty() {
            return Err(Error::SymbolAddedAfterDecodingStarted);
        }
        let hashed = HashedSymbol::new(symbol, self.key);
        let alpha = self.classes.alpha_of(hashed.hash);
        self.local_set.push_fresh_with_alpha(hashed, alpha);
        Ok(())
    }

    /// Ingests a batch of coded symbols, stopping once decoding completes.
    /// Returns the number of symbols actually consumed.
    pub fn add_coded_symbols<I>(&mut self, symbols: I) -> usize
    where
        I: IntoIterator<Item = CodedSymbol<S>>,
    {
        let mut used = 0;
        if self.is_decoded() {
            return used;
        }
        for cs in symbols {
            self.add_coded_symbol(cs);
            used += 1;
            if self.is_decoded() {
                break;
            }
        }
        used
    }

    /// Ingests one coded symbol and peels as far as possible.
    pub fn add_coded_symbol(&mut self, mut cs: CodedSymbol<S>) {
        self.local_set.apply_next(&mut cs, Direction::Remove);
        self.remote_recovered.apply_next(&mut cs, Direction::Remove);
        self.local_recovered.apply_next(&mut cs, Direction::Add);
        let idx = self.coded.len();
        let candidate = cs.count == 1 || cs.count == -1;
        self.coded.push(cs);
        self.queued.push(candidate);
        if candidate {
            self.pure_queue.push(idx);
        }
        self.peel();
        self.decoded = self.coded[0].is_empty_cell();
    }

    /// Runs the peeling loop until no pure cells remain. Queue entries are
    /// candidates (`count` hit ±1 at some mutation); purity is verified with
    /// one hash per pop, and the verified symbol is moved out of its source
    /// cell rather than cloned (the cell drains to empty either way).
    fn peel(&mut self) {
        while let Some(idx) = self.pure_queue.pop() {
            self.queued[idx] = false;
            let cell = &self.coded[idx];
            let is_remote = match cell.count {
                1 => true,
                -1 => false,
                // Resolved (or re-mixed) while queued; a later mutation
                // re-queues it if it turns pure again.
                _ => continue,
            };
            let hash = cell.checksum;
            if cell.sum.hash_with(self.key) != hash {
                continue;
            }
            let symbol = std::mem::take(&mut self.coded[idx].sum);
            self.coded[idx].checksum = 0;
            self.coded[idx].count = 0;
            self.recover(HashedSymbol::with_hash(symbol, hash), idx, is_remote);
        }
    }

    fn recover(&mut self, hashed: HashedSymbol<S>, source_idx: usize, is_remote: bool) {
        let alpha = self.classes.alpha_of(hashed.hash);
        let mut mapping = IndexMapping::with_alpha(hashed.hash, alpha);
        let received = self.coded.len() as u64;
        let direction = if is_remote {
            Direction::Remove
        } else {
            Direction::Add
        };
        loop {
            let idx = mapping.current_index();
            if idx >= received {
                break;
            }
            // Advance before touching so the walk's next cell can be
            // fetched in the shadow of this touch.
            let next = mapping.advance();
            if next < received {
                prefetch(&self.coded[next as usize]);
            }
            let idx = idx as usize;
            if idx != source_idx {
                let cell = &mut self.coded[idx];
                cell.apply(&hashed, direction);
                if (cell.count == 1 || cell.count == -1) && !self.queued[idx] {
                    self.queued[idx] = true;
                    self.pure_queue.push(idx);
                }
            }
        }
        if is_remote {
            self.remote_recovered.push_with_mapping(hashed, mapping);
        } else {
            self.local_recovered.push_with_mapping(hashed, mapping);
        }
    }

    /// True once reconciliation is complete (cell 0 drained). Reads a flag
    /// refreshed once per ingested symbol.
    #[inline]
    pub fn is_decoded(&self) -> bool {
        self.decoded
    }

    /// Consumes the decoder and returns the recovered difference.
    pub fn into_difference(self) -> SetDifference<S> {
        SetDifference {
            remote_only: self
                .remote_recovered
                .symbols()
                .iter()
                .map(|h| h.symbol.clone())
                .collect(),
            local_only: self
                .local_recovered
                .symbols()
                .iter()
                .map(|h| h.symbol.clone())
                .collect(),
        }
    }
}

impl<S: Symbol> Default for IrregularDecoder<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::FixedBytes;
    use std::collections::BTreeSet;

    type Sym = FixedBytes<8>;

    #[test]
    fn class_selection_matches_weights() {
        let classes = IrregularClasses::paper_optimal();
        let trials = 100_000u64;
        let mut counts = vec![0usize; classes.num_classes()];
        for i in 0..trials {
            counts[classes.class_of(splitmix64(i))] += 1;
        }
        for (j, &w) in classes.weights().iter().enumerate() {
            let observed = counts[j] as f64 / trials as f64;
            assert!(
                (observed - w).abs() < 0.01,
                "class {j}: observed {observed:.3}, expected {w:.3}"
            );
        }
    }

    #[test]
    fn class_of_is_deterministic() {
        let classes = IrregularClasses::paper_optimal();
        for h in [0u64, 1, u64::MAX, 0xdeadbeef] {
            assert_eq!(classes.class_of(h), classes.class_of(h));
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weights_must_sum_to_one() {
        IrregularClasses::new(&[0.5, 0.2], &[0.5, 0.5]);
    }

    #[test]
    fn irregular_sketch_reconciles() {
        let alice: Vec<Sym> = (0..2_000u64).map(Sym::from_u64).collect();
        let bob: Vec<Sym> = (50..2_050u64).map(Sym::from_u64).collect();
        let m = 400;
        let mut sa = IrregularSketch::new(m);
        let mut sb = IrregularSketch::new(m);
        for s in &alice {
            sa.add_symbol(s);
        }
        for s in &bob {
            sb.add_symbol(s);
        }
        let diff = sa.subtracted(&sb).unwrap().decode().unwrap();
        let remote: BTreeSet<u64> = diff.remote_only.iter().map(|s| s.to_u64()).collect();
        let local: BTreeSet<u64> = diff.local_only.iter().map(|s| s.to_u64()).collect();
        assert_eq!(remote, (0..50).collect());
        assert_eq!(local, (2000..2050).collect());
    }

    #[test]
    fn irregular_streaming_roundtrip() {
        let mut enc = IrregularEncoder::<Sym>::new();
        for i in 0..1_000u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let mut dec = IrregularDecoder::<Sym>::new();
        for i in 20..1_020u64 {
            dec.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let mut used = 0;
        while !dec.is_decoded() {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
            used += 1;
            assert!(used < 5_000, "failed to converge");
        }
        let diff = dec.into_difference();
        assert_eq!(diff.remote_only.len(), 20);
        assert_eq!(diff.local_only.len(), 20);
    }

    #[test]
    fn undersized_irregular_sketch_fails_gracefully() {
        let mut s = IrregularSketch::<Sym>::new(10);
        for i in 0..200u64 {
            s.add_symbol(&Sym::from_u64(i));
        }
        assert_eq!(s.decode().unwrap_err(), Error::DecodeIncomplete);
    }

    #[test]
    fn add_after_decoding_started_is_rejected() {
        let mut dec = IrregularDecoder::<Sym>::new();
        dec.add_coded_symbol(CodedSymbol::default());
        assert!(dec.add_symbol(Sym::from_u64(1)).is_err());
    }
}
