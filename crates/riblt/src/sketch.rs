//! Fixed-size sketches and incrementally-maintained coded-symbol caches.
//!
//! [`Sketch`] is the first `m` coded symbols of the infinite sequence,
//! materialized as a value: it can be built directly from a set, subtracted
//! from another sketch (linearity, §4.1), and decoded standalone. This is the
//! convenient API when the application wants to ship a single message, and
//! it is what the Monte Carlo experiments use.
//!
//! [`SketchCache`] is the long-lived variant for a node that keeps a prefix
//! of its own coded-symbol sequence around (the "Alice maintains a universal
//! sequence" deployment of §2 and §7.3): it supports adding/removing set
//! items *after* the prefix has been materialized — each update touches only
//! the O(log m) coded symbols the item maps to — and extending the prefix on
//! demand.

use riblt_hash::SipKey;

use crate::coded::{prefetch, CodedSymbol, Direction};
use crate::decoder::SetDifference;
use crate::encoder::CodingWindow;
use crate::error::{Error, Result};
use crate::mapping::{IndexMapping, DEFAULT_ALPHA};
use crate::symbol::{HashedSymbol, Symbol};

/// A materialized prefix of a set's coded-symbol sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Sketch<S: Symbol> {
    cells: Vec<CodedSymbol<S>>,
    key: SipKey,
    alpha: f64,
}

impl<S: Symbol> Sketch<S> {
    /// Creates an empty sketch with `m` coded symbols (default key, α = 0.5).
    pub fn new(m: usize) -> Self {
        Self::with_key(m, SipKey::default())
    }

    /// Creates an empty sketch with `m` coded symbols under a secret key.
    pub fn with_key(m: usize, key: SipKey) -> Self {
        Self::with_key_and_alpha(m, key, DEFAULT_ALPHA)
    }

    /// Creates an empty sketch with an explicit mapping parameter α.
    pub fn with_key_and_alpha(m: usize, key: SipKey, alpha: f64) -> Self {
        Sketch {
            cells: vec![CodedSymbol::default(); m],
            key,
            alpha,
        }
    }

    /// Wraps already-computed coded symbols (e.g. a cell range received from
    /// a peer's [`SketchCache`], minus the local contribution) as a sketch so
    /// it can be decoded. The caller must pass the key and α the cells were
    /// produced under.
    pub fn from_cells(cells: Vec<CodedSymbol<S>>, key: SipKey, alpha: f64) -> Self {
        Sketch { cells, key, alpha }
    }

    /// Builds the sketch of a whole set in one call.
    pub fn from_set<'a>(m: usize, items: impl IntoIterator<Item = &'a S>) -> Self
    where
        S: 'a,
    {
        let mut sketch = Self::new(m);
        for item in items {
            sketch.add_symbol(item);
        }
        sketch
    }

    /// Number of coded symbols.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the sketch has no coded symbols.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The checksum key.
    pub fn key(&self) -> SipKey {
        self.key
    }

    /// The mapping parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Read-only access to the coded symbols.
    pub fn cells(&self) -> &[CodedSymbol<S>] {
        &self.cells
    }

    fn apply(&mut self, hashed: &HashedSymbol<S>, direction: Direction) {
        let m = self.cells.len() as u64;
        let mut mapping = IndexMapping::with_alpha(hashed.hash, self.alpha);
        loop {
            let idx = mapping.current_index();
            if idx >= m {
                break;
            }
            self.cells[idx as usize].apply(hashed, direction);
            mapping.advance();
        }
    }

    /// Mixes one set item into the sketch.
    pub fn add_symbol(&mut self, symbol: &S) {
        let hashed = HashedSymbol::new(symbol.clone(), self.key);
        self.apply(&hashed, Direction::Add);
    }

    /// Removes one set item from the sketch (linearity makes removal the
    /// exact inverse of addition).
    pub fn remove_symbol(&mut self, symbol: &S) {
        let hashed = HashedSymbol::new(symbol.clone(), self.key);
        self.apply(&hashed, Direction::Remove);
    }

    /// Subtracts `other` cell-by-cell: the result is the sketch of the
    /// symmetric difference of the two encoded sets (paper §3).
    pub fn subtract(&mut self, other: &Sketch<S>) -> Result<()> {
        if self.cells.len() != other.cells.len() {
            return Err(Error::SketchShapeMismatch {
                left: self.cells.len(),
                right: other.cells.len(),
            });
        }
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            a.subtract(b);
        }
        Ok(())
    }

    /// Returns a new sketch equal to `self ⊖ other`.
    pub fn subtracted(&self, other: &Sketch<S>) -> Result<Sketch<S>> {
        let mut out = self.clone();
        out.subtract(other)?;
        Ok(out)
    }

    /// Attempts to decode the sketch with the peeling decoder.
    ///
    /// On a *difference* sketch (`a.subtracted(&b)`), success recovers the
    /// symmetric difference, split by side. On a sketch of a plain set,
    /// success recovers the whole set in `remote_only`.
    ///
    /// Returns [`Error::DecodeIncomplete`] if peeling stalls — the caller
    /// should obtain a longer sketch (more coded symbols) and retry.
    pub fn decode(&self) -> Result<SetDifference<S>> {
        let mut cells = self.cells.clone();
        let m = cells.len() as u64;
        // Queue entries are candidates (`count` == ±1); purity is verified
        // with a single hash at pop time, and `queued` keeps a cell from
        // sitting in the queue twice. Mirrors the streaming `Decoder`.
        let mut queued = vec![false; cells.len()];
        let mut queue: Vec<usize> = Vec::new();
        for (i, c) in cells.iter().enumerate() {
            if c.count == 1 || c.count == -1 {
                queued[i] = true;
                queue.push(i);
            }
        }
        let mut diff = SetDifference::default();

        while let Some(idx) = queue.pop() {
            queued[idx] = false;
            let cell = &cells[idx];
            let is_remote = match cell.count {
                1 => true,
                -1 => false,
                _ => continue,
            };
            let hash = cell.checksum;
            if cell.sum.hash_with(self.key) != hash {
                continue;
            }
            // A pure cell holds exactly its one symbol; settle it by moving
            // the fields out and skip it on the propagation walk below.
            let symbol = std::mem::take(&mut cells[idx].sum);
            cells[idx].checksum = 0;
            cells[idx].count = 0;
            let hashed = HashedSymbol::with_hash(symbol, hash);
            let direction = if is_remote {
                Direction::Remove
            } else {
                Direction::Add
            };
            let mut mapping = IndexMapping::with_alpha(hash, self.alpha);
            loop {
                let i = mapping.current_index();
                if i >= m {
                    break;
                }
                let next = mapping.advance();
                if next < m {
                    prefetch(&cells[next as usize]);
                }
                let i = i as usize;
                if i != idx {
                    let cell = &mut cells[i];
                    cell.apply(&hashed, direction);
                    if (cell.count == 1 || cell.count == -1) && !queued[i] {
                        queued[i] = true;
                        queue.push(i);
                    }
                }
            }
            if is_remote {
                diff.remote_only.push(hashed.symbol);
            } else {
                diff.local_only.push(hashed.symbol);
            }
        }

        if cells.iter().all(|c| c.is_empty_cell()) {
            Ok(diff)
        } else {
            Err(Error::DecodeIncomplete)
        }
    }
}

/// A long-lived, incrementally maintained prefix of a set's coded-symbol
/// sequence.
///
/// Typical deployment (paper §7.3): a node keeps `SketchCache` for its whole
/// state, patches it as the state changes (each change touches O(log m)
/// cells), extends it when longer prefixes are needed, and streams
/// `prefix(..)` to any peer that asks — the same cached symbols serve every
/// peer because the sequence is universal.
#[derive(Debug, Clone)]
pub struct SketchCache<S: Symbol> {
    cells: Vec<CodedSymbol<S>>,
    /// Every symbol ever added, positioned past the materialized prefix so
    /// the cache can extend.
    additions: CodingWindow<S>,
    /// Every symbol ever removed, likewise positioned for extension.
    removals: CodingWindow<S>,
    key: SipKey,
    alpha: f64,
}

impl<S: Symbol> SketchCache<S> {
    /// Creates an empty cache with no materialized coded symbols.
    pub fn new() -> Self {
        Self::with_key(SipKey::default())
    }

    /// Creates an empty cache with a secret checksum key.
    pub fn with_key(key: SipKey) -> Self {
        Self::with_key_and_alpha(key, DEFAULT_ALPHA)
    }

    /// Creates an empty cache with an explicit mapping parameter α.
    pub fn with_key_and_alpha(key: SipKey, alpha: f64) -> Self {
        SketchCache {
            cells: Vec::new(),
            additions: CodingWindow::new(key, alpha),
            removals: CodingWindow::new(key, alpha),
            key,
            alpha,
        }
    }

    /// Number of materialized coded symbols.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no coded symbols are materialized yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Net number of items currently in the cached set
    /// (additions − removals).
    pub fn set_size(&self) -> i64 {
        self.additions.len() as i64 - self.removals.len() as i64
    }

    /// The checksum key.
    pub fn key(&self) -> SipKey {
        self.key
    }

    /// The mapping parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn patch_prefix(&mut self, hashed: &HashedSymbol<S>, direction: Direction) -> IndexMapping {
        let m = self.cells.len() as u64;
        let mut mapping = IndexMapping::with_alpha(hashed.hash, self.alpha);
        loop {
            let idx = mapping.current_index();
            if idx >= m {
                break;
            }
            self.cells[idx as usize].apply(hashed, direction);
            mapping.advance();
        }
        mapping
    }

    /// Adds an item to the cached set, patching the materialized prefix.
    pub fn add_symbol(&mut self, symbol: S) {
        let hashed = HashedSymbol::new(symbol, self.key);
        let mapping = self.patch_prefix(&hashed, Direction::Add);
        self.additions.push_with_mapping(hashed, mapping);
    }

    /// Removes an item from the cached set, patching the materialized
    /// prefix. Removing an item that was never added corrupts the cache
    /// (exactly as it would corrupt any linear sketch); the caller owns set
    /// membership.
    pub fn remove_symbol(&mut self, symbol: S) {
        let hashed = HashedSymbol::new(symbol, self.key);
        let mapping = self.patch_prefix(&hashed, Direction::Remove);
        self.removals.push_with_mapping(hashed, mapping);
    }

    /// Extends the materialized prefix by `extra` coded symbols.
    pub fn extend(&mut self, extra: usize) {
        for _ in 0..extra {
            let mut cs = CodedSymbol::default();
            self.additions.apply_next(&mut cs, Direction::Add);
            self.removals.apply_next(&mut cs, Direction::Remove);
            self.cells.push(cs);
        }
    }

    /// Ensures at least `m` coded symbols are materialized.
    pub fn ensure_len(&mut self, m: usize) {
        if m > self.cells.len() {
            let extra = m - self.cells.len();
            self.extend(extra);
        }
    }

    /// The materialized coded symbols.
    pub fn cells(&self) -> &[CodedSymbol<S>] {
        &self.cells
    }

    /// Returns the first `m` coded symbols (materializing more if needed).
    pub fn prefix(&mut self, m: usize) -> &[CodedSymbol<S>] {
        self.ensure_len(m);
        &self.cells[..m]
    }

    /// Returns the coded symbols `[start, start + len)`, materializing the
    /// prefix as far as needed.
    ///
    /// This is the multi-peer serving primitive: every concurrent session
    /// tracks only its own offset into the (universal) sequence and reads
    /// ranges out of the *same* cache — the symbols are encoded once no
    /// matter how many peers, at whatever staleness, are being served.
    pub fn range(&mut self, start: usize, len: usize) -> &[CodedSymbol<S>] {
        self.ensure_len(start + len);
        &self.cells[start..start + len]
    }

    /// Copies the first `m` coded symbols into a standalone [`Sketch`].
    pub fn to_sketch(&mut self, m: usize) -> Sketch<S> {
        self.ensure_len(m);
        Sketch {
            cells: self.cells[..m].to_vec(),
            key: self.key,
            alpha: self.alpha,
        }
    }
}

impl<S: Symbol> Default for SketchCache<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::FixedBytes;
    use std::collections::BTreeSet;

    type Sym = FixedBytes<8>;

    fn syms(range: std::ops::Range<u64>) -> Vec<Sym> {
        range.map(Sym::from_u64).collect()
    }

    fn to_set(v: &[Sym]) -> BTreeSet<u64> {
        v.iter().map(|s| s.to_u64()).collect()
    }

    #[test]
    fn sketch_of_small_set_decodes_itself() {
        let items = syms(0..20);
        let sketch = Sketch::from_set(60, items.iter());
        let diff = sketch.decode().unwrap();
        assert_eq!(to_set(&diff.remote_only), (0..20).collect());
        assert!(diff.local_only.is_empty());
    }

    #[test]
    fn subtracted_sketches_decode_the_symmetric_difference() {
        let alice = syms(0..1000);
        let bob = syms(20..1020);
        let m = 120;
        let sa = Sketch::from_set(m, alice.iter());
        let sb = Sketch::from_set(m, bob.iter());
        let diff_sketch = sa.subtracted(&sb).unwrap();
        let diff = diff_sketch.decode().unwrap();
        assert_eq!(to_set(&diff.remote_only), (0..20).collect());
        assert_eq!(to_set(&diff.local_only), (1000..1020).collect());
    }

    #[test]
    fn undersized_sketch_reports_incomplete() {
        let alice = syms(0..500);
        let bob: Vec<Sym> = Vec::new();
        // 500 differences cannot fit in 40 coded symbols.
        let sa = Sketch::from_set(40, alice.iter());
        let sb = Sketch::from_set(40, bob.iter());
        let diff_sketch = sa.subtracted(&sb).unwrap();
        assert_eq!(diff_sketch.decode().unwrap_err(), Error::DecodeIncomplete);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Sketch::<Sym>::new(10);
        let b = Sketch::<Sym>::new(20);
        assert!(matches!(
            a.subtracted(&b),
            Err(Error::SketchShapeMismatch {
                left: 10,
                right: 20
            })
        ));
    }

    #[test]
    fn add_then_remove_is_identity() {
        let mut s = Sketch::<Sym>::new(50);
        let baseline = s.clone();
        let x = Sym::from_u64(1234);
        s.add_symbol(&x);
        assert_ne!(s, baseline);
        s.remove_symbol(&x);
        assert_eq!(s, baseline);
    }

    #[test]
    fn empty_difference_decodes_to_empty() {
        let set = syms(0..300);
        let m = 16;
        let sa = Sketch::from_set(m, set.iter());
        let sb = Sketch::from_set(m, set.iter());
        let diff = sa.subtracted(&sb).unwrap().decode().unwrap();
        assert!(diff.is_empty());
    }

    #[test]
    fn cache_prefix_matches_fresh_sketch() {
        // A cache built incrementally (adds + removes) must equal the sketch
        // of the final set built from scratch — the linearity property the
        // Ethereum application relies on.
        let mut cache = SketchCache::<Sym>::new();
        cache.ensure_len(80);
        for i in 0..500u64 {
            cache.add_symbol(Sym::from_u64(i));
        }
        // Mutate: remove 100..150, add 1000..1060.
        for i in 100..150u64 {
            cache.remove_symbol(Sym::from_u64(i));
        }
        for i in 1000..1060u64 {
            cache.add_symbol(Sym::from_u64(i));
        }
        let final_set: Vec<Sym> = (0..100u64)
            .chain(150..500)
            .chain(1000..1060)
            .map(Sym::from_u64)
            .collect();
        let fresh = Sketch::from_set(80, final_set.iter());
        assert_eq!(cache.to_sketch(80), fresh);
    }

    #[test]
    fn cache_extension_matches_fresh_sketch() {
        // Extending after updates must produce the same coded symbols as a
        // fresh encoding of the current set.
        let mut cache = SketchCache::<Sym>::new();
        for i in 0..200u64 {
            cache.add_symbol(Sym::from_u64(i));
        }
        cache.ensure_len(32);
        for i in 200..300u64 {
            cache.add_symbol(Sym::from_u64(i));
        }
        cache.ensure_len(128);
        let fresh = Sketch::from_set(128, syms(0..300).iter());
        assert_eq!(cache.to_sketch(128), fresh);
    }

    #[test]
    fn cache_serves_reconciliation_against_a_peer() {
        let mut cache = SketchCache::<Sym>::new();
        for i in 0..2_000u64 {
            cache.add_symbol(Sym::from_u64(i));
        }
        // Peer holds a slightly different set.
        let peer = syms(50..2_050);
        let m = 400;
        let alice_sketch = cache.to_sketch(m);
        let peer_sketch = Sketch::from_set(m, peer.iter());
        let diff = alice_sketch
            .subtracted(&peer_sketch)
            .unwrap()
            .decode()
            .unwrap();
        assert_eq!(to_set(&diff.remote_only), (0..50).collect());
        assert_eq!(to_set(&diff.local_only), (2000..2050).collect());
    }

    #[test]
    fn one_cache_serves_peers_at_different_staleness() {
        // Two peers with different differences read ranges out of the same
        // cache; each subtracts its own contribution and decodes. The cache
        // is never re-encoded per peer (universality, §2).
        let mut cache = SketchCache::<Sym>::new();
        for i in 0..1_000u64 {
            cache.add_symbol(Sym::from_u64(i));
        }
        // Peer 1 misses 5 items; peer 2 misses 40.
        for (peer_items, missing) in [(syms(5..1_000), 0..5u64), (syms(40..1_000), 0..40u64)] {
            let m = 16 * missing.clone().count().max(1);
            let served: Vec<_> = cache.range(0, m).to_vec();
            let own = Sketch::from_set(m, peer_items.iter());
            let mut diff_cells = served;
            for (cell, mine) in diff_cells.iter_mut().zip(own.cells()) {
                cell.subtract(mine);
            }
            let diff = Sketch::from_cells(diff_cells, cache.key(), cache.alpha())
                .decode()
                .unwrap();
            assert_eq!(to_set(&diff.remote_only), missing.collect());
            assert!(diff.local_only.is_empty());
        }
    }

    #[test]
    fn range_windows_agree_with_prefix() {
        let mut cache = SketchCache::<Sym>::new();
        for i in 0..300u64 {
            cache.add_symbol(Sym::from_u64(i));
        }
        let prefix = cache.prefix(100).to_vec();
        let window = cache.range(40, 30).to_vec();
        assert_eq!(window, prefix[40..70]);
        // Ranges past the materialized prefix extend it on demand.
        let tail = cache.range(100, 20).to_vec();
        assert_eq!(cache.len(), 120);
        assert_eq!(tail, cache.cells()[100..120]);
    }

    #[test]
    fn set_size_tracks_adds_and_removes() {
        let mut cache = SketchCache::<Sym>::new();
        assert_eq!(cache.set_size(), 0);
        cache.add_symbol(Sym::from_u64(1));
        cache.add_symbol(Sym::from_u64(2));
        cache.remove_symbol(Sym::from_u64(1));
        assert_eq!(cache.set_size(), 1);
    }
}
