//! Coded symbols (paper §3, "Coded symbol format").
//!
//! A coded symbol is the unit of transmission: the XOR sum of the source
//! symbols mapped to it, the XOR of their keyed checksum hashes, and a signed
//! count. Subtracting two coded symbols (Alice's minus Bob's) yields a coded
//! symbol of the symmetric difference, which is what the peeling decoder
//! operates on.

use crate::symbol::{HashedSymbol, Symbol};

/// Hints the CPU to pull the referenced value toward L1. The coding-window
/// and peeling walks touch cells at mapping-determined (effectively random)
/// indices across working sets that outgrow L2 for large differences;
/// issuing the fetch as soon as the next index is known hides most of the
/// miss latency behind the walk's serial index-sampling chain.
/// `_mm_prefetch` is architecturally a hint — it cannot fault — so the only
/// unsafe part is the intrinsic call itself.
#[inline(always)]
pub(crate) fn prefetch<T>(cell: &T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
            cell as *const T as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = cell;
}

/// Direction in which a source symbol is applied to a coded symbol.
///
/// `Add` corresponds to symbols from the local/remote set being mixed in;
/// `Remove` corresponds to subtracting a set (or peeling a recovered
/// symbol). For the XOR fields the two are identical; they differ only in
/// the sign applied to `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Mix the symbol in (count += 1).
    Add,
    /// Take the symbol out (count -= 1).
    Remove,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Add => Direction::Remove,
            Direction::Remove => Direction::Add,
        }
    }
}

/// One coded symbol: `{sum, checksum, count}`.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedSymbol<S: Symbol> {
    /// XOR of the source symbols mapped to this coded symbol.
    pub sum: S,
    /// XOR of the keyed hashes of the source symbols mapped here.
    pub checksum: u64,
    /// Signed number of source symbols mapped here (negative counts appear
    /// after subtraction, where Bob's symbols carry weight −1).
    pub count: i64,
}

impl<S: Symbol> Default for CodedSymbol<S> {
    fn default() -> Self {
        CodedSymbol {
            sum: S::default(),
            checksum: 0,
            count: 0,
        }
    }
}

/// Outcome of inspecting a coded symbol during peeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelState {
    /// No source symbols remain in this cell.
    Empty,
    /// Exactly one source symbol with positive sign remains (it belongs to
    /// the remote-only side, A \ B, paper §3).
    PureRemote,
    /// Exactly one source symbol with negative sign remains (local-only,
    /// B \ A).
    PureLocal,
    /// More than one symbol (or a hash mismatch) — cannot peel yet.
    Mixed,
}

impl<S: Symbol> CodedSymbol<S> {
    /// Creates an empty coded symbol.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a hashed source symbol in the given direction.
    #[inline]
    pub fn apply(&mut self, symbol: &HashedSymbol<S>, direction: Direction) {
        self.sum.xor_in_place(&symbol.symbol);
        self.checksum ^= symbol.hash;
        match direction {
            Direction::Add => self.count += 1,
            Direction::Remove => self.count -= 1,
        }
    }

    /// Subtracts another coded symbol (the `⊕` operator of §3 applied
    /// pairwise during `IBLT(A) ⊖ IBLT(B)`).
    #[inline]
    pub fn subtract(&mut self, other: &CodedSymbol<S>) {
        self.sum.xor_in_place(&other.sum);
        self.checksum ^= other.checksum;
        self.count -= other.count;
    }

    /// Adds another coded symbol (used when merging partial encodings, e.g.
    /// sharded encoders or incremental cache maintenance).
    #[inline]
    pub fn add(&mut self, other: &CodedSymbol<S>) {
        self.sum.xor_in_place(&other.sum);
        self.checksum ^= other.checksum;
        self.count += other.count;
    }

    /// True if no symbols remain mixed in (all three fields neutral).
    #[inline]
    pub fn is_empty_cell(&self) -> bool {
        self.count == 0 && self.checksum == 0 && self.sum.is_zero()
    }

    /// Classifies the cell for the peeling decoder.
    ///
    /// A cell is *pure* when exactly one source symbol remains, which is
    /// detected by `checksum == hash(sum)` (§3); the sign of `count` tells
    /// which side the symbol belongs to. The hash comparison makes the test
    /// robust even when `count` happens to be ±1 with several symbols mixed
    /// in (e.g. 2 remote + 1 local).
    #[inline]
    pub fn peel_state(&self, key: riblt_hash::SipKey) -> PeelState {
        if self.is_empty_cell() {
            return PeelState::Empty;
        }
        match self.count {
            1 => {
                if self.sum.hash_with(key) == self.checksum {
                    PeelState::PureRemote
                } else {
                    PeelState::Mixed
                }
            }
            -1 => {
                if self.sum.hash_with(key) == self.checksum {
                    PeelState::PureLocal
                } else {
                    PeelState::Mixed
                }
            }
            _ => PeelState::Mixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::FixedBytes;
    use riblt_hash::SipKey;

    type Sym = FixedBytes<8>;

    fn hs(v: u64, key: SipKey) -> HashedSymbol<Sym> {
        HashedSymbol::new(Sym::from_u64(v), key)
    }

    #[test]
    fn apply_then_remove_restores_empty() {
        let key = SipKey::default();
        let mut c = CodedSymbol::<Sym>::new();
        let s = hs(77, key);
        c.apply(&s, Direction::Add);
        assert!(!c.is_empty_cell());
        c.apply(&s, Direction::Remove);
        assert!(c.is_empty_cell());
    }

    #[test]
    fn pure_detection_and_side() {
        let key = SipKey::default();
        let mut c = CodedSymbol::<Sym>::new();
        let s = hs(123, key);
        c.apply(&s, Direction::Add);
        assert_eq!(c.peel_state(key), PeelState::PureRemote);
        let mut d = CodedSymbol::<Sym>::new();
        d.apply(&s, Direction::Remove);
        assert_eq!(d.peel_state(key), PeelState::PureLocal);
    }

    #[test]
    fn two_symbols_are_mixed_even_if_count_is_one() {
        // 2 adds + 1 remove gives count = 1 but the checksum will not match
        // the hash of the XOR sum (except with negligible probability).
        let key = SipKey::default();
        let mut c = CodedSymbol::<Sym>::new();
        c.apply(&hs(1, key), Direction::Add);
        c.apply(&hs(2, key), Direction::Add);
        c.apply(&hs(3, key), Direction::Remove);
        assert_eq!(c.count, 1);
        assert_eq!(c.peel_state(key), PeelState::Mixed);
    }

    #[test]
    fn subtraction_implements_symmetric_difference() {
        // Shared symbols cancel; exclusive symbols remain with signed counts.
        let key = SipKey::default();
        let shared = hs(10, key);
        let only_a = hs(20, key);
        let only_b = hs(30, key);

        let mut a = CodedSymbol::<Sym>::new();
        a.apply(&shared, Direction::Add);
        a.apply(&only_a, Direction::Add);

        let mut b = CodedSymbol::<Sym>::new();
        b.apply(&shared, Direction::Add);
        b.apply(&only_b, Direction::Add);

        a.subtract(&b);
        assert_eq!(a.count, 0); // +1 (only_a) − 1 (only_b)
                                // Removing only_b and only_a should empty the cell.
        a.apply(&only_b, Direction::Add);
        a.apply(&only_a, Direction::Remove);
        assert!(a.is_empty_cell());
    }

    #[test]
    fn add_and_subtract_are_inverses() {
        let key = SipKey::default();
        let mut x = CodedSymbol::<Sym>::new();
        x.apply(&hs(5, key), Direction::Add);
        x.apply(&hs(6, key), Direction::Add);
        let snapshot = x.clone();
        let mut y = CodedSymbol::<Sym>::new();
        y.apply(&hs(9, key), Direction::Add);
        x.add(&y);
        x.subtract(&y);
        assert_eq!(x, snapshot);
    }

    #[test]
    fn empty_cell_is_not_pure() {
        let key = SipKey::default();
        let c = CodedSymbol::<Sym>::new();
        assert_eq!(c.peel_state(key), PeelState::Empty);
    }
}
