//! The peeling decoder (paper §3, §4.1).
//!
//! Bob feeds his own set into the decoder, then ingests Alice's coded
//! symbols one at a time. For each incoming symbol `a_i`, the decoder lazily
//! generates `b_i` from the local set (via the same coding-window machinery
//! as the encoder) and stores the difference `a_i ⊖ b_i`, which encodes only
//! the symmetric difference A △ B. Peeling then recovers difference symbols
//! from *pure* cells and propagates them through the stored (and all future)
//! coded symbols.
//!
//! Termination: coded symbol 0 has every difference symbol mapped to it
//! (ρ(0) = 1), so it drains to the empty cell exactly when all difference
//! symbols have been recovered — this is Bob's signal to stop Alice (§4.1).

use riblt_hash::SipKey;

use crate::coded::{CodedSymbol, Direction, PeelState};
use crate::encoder::CodingWindow;
use crate::error::{Error, Result};
use crate::mapping::{IndexMapping, DEFAULT_ALPHA};
use crate::symbol::{HashedSymbol, Symbol};

/// The recovered symmetric difference.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SetDifference<S> {
    /// Symbols present only in the remote set (A \ B): Bob is missing these.
    pub remote_only: Vec<S>,
    /// Symbols present only in the local set (B \ A): the remote peer is
    /// missing these.
    pub local_only: Vec<S>,
}

impl<S> SetDifference<S> {
    /// Total number of recovered difference symbols.
    pub fn len(&self) -> usize {
        self.remote_only.len() + self.local_only.len()
    }

    /// True if the difference is empty (the sets were equal).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Streaming peeling decoder.
///
/// ```
/// use riblt::{Decoder, Encoder, FixedBytes};
///
/// // Alice has {0..1000}, Bob has {10..1010}.
/// let mut alice = Encoder::<FixedBytes<8>>::new();
/// for i in 0..1000u64 {
///     alice.add_symbol(FixedBytes::from_u64(i)).unwrap();
/// }
/// let mut bob = Decoder::<FixedBytes<8>>::new();
/// for i in 10..1010u64 {
///     bob.add_symbol(FixedBytes::from_u64(i)).unwrap();
/// }
/// while !bob.is_decoded() {
///     bob.add_coded_symbol(alice.produce_next_coded_symbol());
/// }
/// let diff = bob.into_difference();
/// assert_eq!(diff.remote_only.len(), 10); // 0..10
/// assert_eq!(diff.local_only.len(), 10);  // 1000..1010
/// ```
#[derive(Debug, Clone)]
pub struct Decoder<S: Symbol> {
    /// Stored difference coded symbols, pruned of everything recovered.
    coded: Vec<CodedSymbol<S>>,
    /// The local set (B), applied lazily to incoming coded symbols.
    local_set: CodingWindow<S>,
    /// Recovered remote-only symbols; subtracted from future coded symbols.
    remote_recovered: CodingWindow<S>,
    /// Recovered local-only symbols; added back into future coded symbols.
    local_recovered: CodingWindow<S>,
    /// Indices of cells that may currently be pure.
    pure_queue: Vec<usize>,
    key: SipKey,
    alpha: f64,
}

impl<S: Symbol> Default for Decoder<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Symbol> Decoder<S> {
    /// Creates a decoder with the default checksum key and α = 0.5.
    pub fn new() -> Self {
        Self::with_key(SipKey::default())
    }

    /// Creates a decoder with a secret checksum key (must match the
    /// encoder's key).
    pub fn with_key(key: SipKey) -> Self {
        Self::with_key_and_alpha(key, DEFAULT_ALPHA)
    }

    /// Creates a decoder with an explicit mapping parameter α (experiments
    /// only; must match the encoder).
    pub fn with_key_and_alpha(key: SipKey, alpha: f64) -> Self {
        Decoder {
            coded: Vec::new(),
            local_set: CodingWindow::new(key, alpha),
            remote_recovered: CodingWindow::new(key, alpha),
            local_recovered: CodingWindow::new(key, alpha),
            pure_queue: Vec::new(),
            key,
            alpha,
        }
    }

    /// Number of coded symbols ingested so far.
    pub fn coded_symbols_received(&self) -> usize {
        self.coded.len()
    }

    /// Number of local (own-set) symbols registered.
    pub fn local_set_size(&self) -> usize {
        self.local_set.len()
    }

    /// Adds a symbol of the local set. Must be called before the first
    /// [`Self::add_coded_symbol`].
    pub fn add_symbol(&mut self, symbol: S) -> Result<()> {
        let hashed = HashedSymbol::new(symbol, self.key);
        self.add_hashed_symbol(hashed)
    }

    /// Adds a local symbol whose keyed hash is already known.
    pub fn add_hashed_symbol(&mut self, symbol: HashedSymbol<S>) -> Result<()> {
        if !self.coded.is_empty() {
            return Err(Error::SymbolAddedAfterDecodingStarted);
        }
        self.local_set.push_fresh(symbol);
        Ok(())
    }

    /// The mapping parameter α this decoder was built with (must match the
    /// remote encoder's).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Ingests a batch of coded symbols, stopping as soon as decoding
    /// completes. Returns the number of symbols actually consumed.
    ///
    /// This is the preferred entry point for session layers moving wire
    /// batches: it hoists the completion check out of the per-symbol hot
    /// path and drops the remainder of a batch once the difference has been
    /// recovered.
    pub fn add_coded_symbols<I>(&mut self, symbols: I) -> usize
    where
        I: IntoIterator<Item = CodedSymbol<S>>,
    {
        let mut used = 0;
        if self.is_decoded() {
            return used;
        }
        for cs in symbols {
            self.add_coded_symbol(cs);
            used += 1;
            if self.is_decoded() {
                break;
            }
        }
        used
    }

    /// Ingests the next coded symbol from the remote encoder and peels as
    /// far as possible.
    pub fn add_coded_symbol(&mut self, mut cs: CodedSymbol<S>) {
        // Lazily subtract the local set's contribution to this index, then
        // adjust for everything already recovered.
        self.local_set.apply_next(&mut cs, Direction::Remove);
        self.remote_recovered.apply_next(&mut cs, Direction::Remove);
        self.local_recovered.apply_next(&mut cs, Direction::Add);

        let idx = self.coded.len();
        self.coded.push(cs);
        if matches!(
            self.coded[idx].peel_state(self.key),
            PeelState::PureRemote | PeelState::PureLocal
        ) {
            self.pure_queue.push(idx);
        }
        self.peel();
    }

    /// Runs the peeling loop until no pure cells remain.
    fn peel(&mut self) {
        while let Some(idx) = self.pure_queue.pop() {
            match self.coded[idx].peel_state(self.key) {
                PeelState::PureRemote => {
                    let sym = self.coded[idx].sum.clone();
                    let hash = self.coded[idx].checksum;
                    self.recover(sym, hash, true);
                }
                PeelState::PureLocal => {
                    let sym = self.coded[idx].sum.clone();
                    let hash = self.coded[idx].checksum;
                    self.recover(sym, hash, false);
                }
                // The cell was resolved while it sat in the queue.
                PeelState::Empty | PeelState::Mixed => {}
            }
        }
    }

    /// Removes a newly recovered symbol from every stored coded symbol it is
    /// mapped to, queues any cells that became pure, and registers it so
    /// that *future* incoming coded symbols are adjusted too.
    fn recover(&mut self, symbol: S, hash: u64, is_remote: bool) {
        let hashed = HashedSymbol::with_hash(symbol, hash);
        let mut mapping = IndexMapping::with_alpha(hash, self.alpha);
        let received = self.coded.len() as u64;
        let direction = if is_remote {
            Direction::Remove
        } else {
            Direction::Add
        };
        loop {
            let idx = mapping.current_index();
            if idx >= received {
                break;
            }
            let cell = &mut self.coded[idx as usize];
            cell.apply(&hashed, direction);
            if matches!(
                cell.peel_state(self.key),
                PeelState::PureRemote | PeelState::PureLocal
            ) {
                self.pure_queue.push(idx as usize);
            }
            mapping.advance();
        }
        if is_remote {
            self.remote_recovered.push_with_mapping(hashed, mapping);
        } else {
            self.local_recovered.push_with_mapping(hashed, mapping);
        }
    }

    /// True once every difference symbol has been recovered.
    ///
    /// Detection uses the paper's termination indicator: coded symbol 0
    /// contains every unrecovered difference symbol, so reconciliation is
    /// complete exactly when it has drained to the empty cell.
    pub fn is_decoded(&self) -> bool {
        !self.coded.is_empty() && self.coded[0].is_empty_cell()
    }

    /// Symbols recovered so far that only the remote set contains (A \ B).
    pub fn remote_symbols(&self) -> impl Iterator<Item = &S> {
        self.remote_recovered.symbols().iter().map(|h| &h.symbol)
    }

    /// Symbols recovered so far that only the local set contains (B \ A).
    pub fn local_symbols(&self) -> impl Iterator<Item = &S> {
        self.local_recovered.symbols().iter().map(|h| &h.symbol)
    }

    /// Number of difference symbols recovered so far.
    pub fn recovered_count(&self) -> usize {
        self.remote_recovered.len() + self.local_recovered.len()
    }

    /// Consumes the decoder, returning the recovered difference.
    ///
    /// Call [`Self::is_decoded`] first if you need the *complete*
    /// difference; this returns whatever has been recovered so far.
    pub fn into_difference(self) -> SetDifference<S> {
        SetDifference {
            remote_only: self
                .remote_recovered
                .symbols()
                .iter()
                .map(|h| h.symbol.clone())
                .collect(),
            local_only: self
                .local_recovered
                .symbols()
                .iter()
                .map(|h| h.symbol.clone())
                .collect(),
        }
    }

    /// Returns the recovered difference, failing if decoding is incomplete.
    pub fn try_into_difference(self) -> Result<SetDifference<S>> {
        if !self.is_decoded() {
            return Err(Error::DecodeIncomplete);
        }
        Ok(self.into_difference())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::symbol::FixedBytes;
    use std::collections::BTreeSet;

    type Sym = FixedBytes<8>;

    /// Reconciles two integer sets and checks the recovered difference.
    fn reconcile(alice: &[u64], bob: &[u64]) -> (usize, SetDifference<Sym>) {
        let mut enc = Encoder::<Sym>::new();
        for &x in alice {
            enc.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut dec = Decoder::<Sym>::new();
        for &x in bob {
            dec.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut used = 0;
        while !dec.is_decoded() {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
            used += 1;
            assert!(used < 10_000, "decoder failed to converge");
        }
        (used, dec.into_difference())
    }

    fn as_set(items: &[Sym]) -> BTreeSet<u64> {
        items.iter().map(|s| s.to_u64()).collect()
    }

    #[test]
    fn recovers_small_difference() {
        let alice: Vec<u64> = (0..1000).collect();
        let bob: Vec<u64> = (5..1005).collect();
        let (_, diff) = reconcile(&alice, &bob);
        assert_eq!(as_set(&diff.remote_only), (0..5).collect());
        assert_eq!(as_set(&diff.local_only), (1000..1005).collect());
    }

    #[test]
    fn identical_sets_terminate_after_one_symbol() {
        let set: Vec<u64> = (0..500).collect();
        let (used, diff) = reconcile(&set, &set);
        assert_eq!(used, 1);
        assert!(diff.is_empty());
    }

    #[test]
    fn handles_empty_local_set() {
        // Bob knows nothing: the whole of A is the difference.
        let alice: Vec<u64> = (100..164).collect();
        let (_, diff) = reconcile(&alice, &[]);
        assert_eq!(as_set(&diff.remote_only), (100..164).collect());
        assert!(diff.local_only.is_empty());
    }

    #[test]
    fn handles_empty_remote_set() {
        let bob: Vec<u64> = (0..64).collect();
        let (_, diff) = reconcile(&[], &bob);
        assert!(diff.remote_only.is_empty());
        assert_eq!(as_set(&diff.local_only), (0..64).collect());
    }

    #[test]
    fn overhead_is_moderate_for_moderate_differences() {
        // d = 200 differences; the paper's average overhead is ≈1.4–1.5 in
        // this regime, and individual runs rarely exceed 2.5.
        let alice: Vec<u64> = (0..10_000).collect();
        let bob: Vec<u64> = (100..10_100).collect();
        let (used, diff) = reconcile(&alice, &bob);
        assert_eq!(diff.len(), 200);
        assert!(used <= 500, "used {used} coded symbols for d=200");
    }

    #[test]
    fn symbol_added_after_decoding_started_is_rejected() {
        let mut dec = Decoder::<Sym>::new();
        dec.add_symbol(Sym::from_u64(1)).unwrap();
        dec.add_coded_symbol(CodedSymbol::new());
        assert_eq!(
            dec.add_symbol(Sym::from_u64(2)),
            Err(Error::SymbolAddedAfterDecodingStarted)
        );
    }

    #[test]
    fn try_into_difference_requires_completion() {
        let mut enc = Encoder::<Sym>::new();
        for i in 0..100u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let mut dec = Decoder::<Sym>::new();
        // One coded symbol cannot possibly decode 100 differences.
        dec.add_coded_symbol(enc.produce_next_coded_symbol());
        assert!(!dec.is_decoded());
        assert_eq!(
            dec.try_into_difference().unwrap_err(),
            Error::DecodeIncomplete
        );
    }

    #[test]
    fn keys_must_match_between_encoder_and_decoder() {
        let mut enc = Encoder::<Sym>::with_key(SipKey::new(1, 1));
        for i in 0..20u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let mut dec = Decoder::<Sym>::with_key(SipKey::new(2, 2));
        for i in 10..30u64 {
            dec.add_symbol(Sym::from_u64(i)).unwrap();
        }
        // With mismatched keys the common items do not cancel, so after a
        // generous number of coded symbols the decoder still is not done.
        for _ in 0..200 {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
        }
        assert!(!dec.is_decoded());
    }

    #[test]
    fn decoding_progress_is_monotonic() {
        let alice: Vec<u64> = (0..5000).collect();
        let bob: Vec<u64> = (250..5250).collect();
        let mut enc = Encoder::<Sym>::new();
        for &x in &alice {
            enc.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut dec = Decoder::<Sym>::new();
        for &x in &bob {
            dec.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut last = 0;
        for _ in 0..3000 {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
            let now = dec.recovered_count();
            assert!(now >= last);
            last = now;
            if dec.is_decoded() {
                break;
            }
        }
        assert!(dec.is_decoded());
        assert_eq!(dec.recovered_count(), 500);
    }

    #[test]
    fn large_difference_decodes_with_reasonable_overhead() {
        let alice: Vec<u64> = (0..30_000).collect();
        let bob: Vec<u64> = (1_000..31_000).collect();
        let (used, diff) = reconcile(&alice, &bob);
        assert_eq!(diff.len(), 2_000);
        let overhead = used as f64 / 2_000.0;
        assert!(
            overhead < 1.8,
            "overhead {overhead:.2} should be below 1.8 for d=2000"
        );
    }
}
