//! The peeling decoder (paper §3, §4.1).
//!
//! Bob feeds his own set into the decoder, then ingests Alice's coded
//! symbols one at a time. For each incoming symbol `a_i`, the decoder lazily
//! generates `b_i` from the local set (via the same coding-window machinery
//! as the encoder) and stores the difference `a_i ⊖ b_i`, which encodes only
//! the symmetric difference A △ B. Peeling then recovers difference symbols
//! from *pure* cells and propagates them through the stored (and all future)
//! coded symbols.
//!
//! Termination: coded symbol 0 has every difference symbol mapped to it
//! (ρ(0) = 1), so it drains to the empty cell exactly when all difference
//! symbols have been recovered — this is Bob's signal to stop Alice (§4.1).

use riblt_hash::SipKey;

use crate::coded::{prefetch, CodedSymbol, Direction};
use crate::encoder::CodingWindow;
use crate::error::{Error, Result};
use crate::mapping::{IndexMapping, DEFAULT_ALPHA};
use crate::symbol::{HashedSymbol, Symbol};

/// The recovered symmetric difference.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SetDifference<S> {
    /// Symbols present only in the remote set (A \ B): Bob is missing these.
    pub remote_only: Vec<S>,
    /// Symbols present only in the local set (B \ A): the remote peer is
    /// missing these.
    pub local_only: Vec<S>,
}

impl<S> SetDifference<S> {
    /// Total number of recovered difference symbols.
    pub fn len(&self) -> usize {
        self.remote_only.len() + self.local_only.len()
    }

    /// True if the difference is empty (the sets were equal).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Number of pure symbols peeled and propagated jointly per round of
/// [`Decoder::peel`]. Each symbol's propagation walk is one long serial
/// dependency chain (PRNG draw → jump factor → next index); interleaving
/// a few walks keeps several chains in flight, which roughly divides the
/// walk latency during the peeling avalanche (when the candidate queue
/// is deep enough to fill the lanes).
const PEEL_LANES: usize = 4;

/// Indices generated ahead of application per lane per wave during batched
/// propagation. A wave of 4 lanes × 8 steps puts ~16 generations (hundreds
/// of cycles) between a cell's prefetch and its touch — enough to cover a
/// miss to L3 or DRAM, which matters once the coded-symbol array outgrows
/// L2 (it does for differences above a few thousand 32-byte symbols).
const WAVE_STEPS: usize = 8;

/// Streaming peeling decoder.
///
/// ```
/// use riblt::{Decoder, Encoder, FixedBytes};
///
/// // Alice has {0..1000}, Bob has {10..1010}.
/// let mut alice = Encoder::<FixedBytes<8>>::new();
/// for i in 0..1000u64 {
///     alice.add_symbol(FixedBytes::from_u64(i)).unwrap();
/// }
/// let mut bob = Decoder::<FixedBytes<8>>::new();
/// for i in 10..1010u64 {
///     bob.add_symbol(FixedBytes::from_u64(i)).unwrap();
/// }
/// while !bob.is_decoded() {
///     bob.add_coded_symbol(alice.produce_next_coded_symbol());
/// }
/// let diff = bob.into_difference();
/// assert_eq!(diff.remote_only.len(), 10); // 0..10
/// assert_eq!(diff.local_only.len(), 10);  // 1000..1010
/// ```
#[derive(Debug, Clone)]
pub struct Decoder<S: Symbol> {
    /// Stored difference coded symbols, pruned of everything recovered.
    coded: Vec<CodedSymbol<S>>,
    /// Whether each cell currently has a pending entry in `pure_queue`,
    /// kept in lockstep with `coded`.
    ///
    /// Purity is verified *lazily*: a cell becomes a peel candidate the
    /// moment a mutation leaves `count == ±1` (a register compare — no
    /// hashing), and the SipHash purity check runs once when the candidate
    /// is popped. Cells whose count moved away from ±1 while queued are
    /// discarded unhashed, so transiently-pure cells in the peeling
    /// avalanche never cost a hash. The flag dedupes queue entries: a cell
    /// is re-queued only after its pending entry has been popped.
    queued: Vec<bool>,
    /// Cached termination flag; see [`Self::is_decoded`].
    decoded: bool,
    /// The local set (B), applied lazily to incoming coded symbols.
    local_set: CodingWindow<S>,
    /// Recovered remote-only symbols; subtracted from future coded symbols.
    remote_recovered: CodingWindow<S>,
    /// Recovered local-only symbols; added back into future coded symbols.
    local_recovered: CodingWindow<S>,
    /// Indices of cells that may currently be pure.
    pure_queue: Vec<usize>,
    /// Scratch for [`Self::peel`]'s batched propagation: verified pure
    /// symbols (with side and source cell) and their walk mappings. Kept on
    /// the decoder so the peel loop never allocates in steady state.
    batch: Vec<(HashedSymbol<S>, bool, usize)>,
    batch_mappings: Vec<IndexMapping>,
    /// Scratch for one propagation wave: `(lane, cell index)` pairs
    /// generated ahead of application (see [`Self::recover_batch`]).
    pending: Vec<(usize, usize)>,
    key: SipKey,
    alpha: f64,
}

impl<S: Symbol> Default for Decoder<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Symbol> Decoder<S> {
    /// Creates a decoder with the default checksum key and α = 0.5.
    pub fn new() -> Self {
        Self::with_key(SipKey::default())
    }

    /// Creates a decoder with a secret checksum key (must match the
    /// encoder's key).
    pub fn with_key(key: SipKey) -> Self {
        Self::with_key_and_alpha(key, DEFAULT_ALPHA)
    }

    /// Creates a decoder with an explicit mapping parameter α (experiments
    /// only; must match the encoder).
    pub fn with_key_and_alpha(key: SipKey, alpha: f64) -> Self {
        Decoder {
            coded: Vec::new(),
            queued: Vec::new(),
            decoded: false,
            local_set: CodingWindow::new(key, alpha),
            remote_recovered: CodingWindow::new(key, alpha),
            local_recovered: CodingWindow::new(key, alpha),
            pure_queue: Vec::new(),
            batch: Vec::new(),
            batch_mappings: Vec::new(),
            pending: Vec::with_capacity(PEEL_LANES * WAVE_STEPS),
            key,
            alpha,
        }
    }

    /// Pre-sizes the internal buffers for an anticipated difference of `d`
    /// symbols: the paper's expected overhead is ≈1.35·d coded symbols for
    /// large d (§5), so callers that know (or can bound) the difference can
    /// avoid reallocation in the hot ingest loop.
    pub fn reserve_for_difference(&mut self, d: usize) {
        let expected_coded = d + d / 2 + 8; // ceil(1.35d) plus slack
        self.coded
            .reserve(expected_coded.saturating_sub(self.coded.len()));
        self.queued
            .reserve(expected_coded.saturating_sub(self.queued.len()));
        self.pure_queue
            .reserve(d.saturating_sub(self.pure_queue.len()));
    }

    /// Number of coded symbols ingested so far.
    pub fn coded_symbols_received(&self) -> usize {
        self.coded.len()
    }

    /// Number of local (own-set) symbols registered.
    pub fn local_set_size(&self) -> usize {
        self.local_set.len()
    }

    /// Adds a symbol of the local set. Must be called before the first
    /// [`Self::add_coded_symbol`].
    pub fn add_symbol(&mut self, symbol: S) -> Result<()> {
        let hashed = HashedSymbol::new(symbol, self.key);
        self.add_hashed_symbol(hashed)
    }

    /// Adds a local symbol whose keyed hash is already known.
    pub fn add_hashed_symbol(&mut self, symbol: HashedSymbol<S>) -> Result<()> {
        if !self.coded.is_empty() {
            return Err(Error::SymbolAddedAfterDecodingStarted);
        }
        self.local_set.push_fresh(symbol);
        Ok(())
    }

    /// The mapping parameter α this decoder was built with (must match the
    /// remote encoder's).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Ingests a batch of coded symbols, stopping as soon as decoding
    /// completes. Returns the number of symbols actually consumed.
    ///
    /// This is the preferred entry point for session layers moving wire
    /// batches: it hoists the completion check out of the per-symbol hot
    /// path and drops the remainder of a batch once the difference has been
    /// recovered.
    pub fn add_coded_symbols<I>(&mut self, symbols: I) -> usize
    where
        I: IntoIterator<Item = CodedSymbol<S>>,
    {
        // Already decoded: drop the whole batch without entering the
        // per-symbol loop at all.
        if self.is_decoded() {
            return 0;
        }
        let iter = symbols.into_iter();
        let (batch_hint, _) = iter.size_hint();
        self.coded.reserve(batch_hint);
        self.queued.reserve(batch_hint);
        let mut used = 0;
        for cs in iter {
            self.add_coded_symbol(cs);
            used += 1;
            // `is_decoded` is a cached-state read (no re-hash, no byte
            // scan), so checking once per consumed symbol is free.
            if self.is_decoded() {
                break;
            }
        }
        used
    }

    /// Ingests the next coded symbol from the remote encoder and peels as
    /// far as possible.
    pub fn add_coded_symbol(&mut self, mut cs: CodedSymbol<S>) {
        // Lazily subtract the local set's contribution to this index, then
        // adjust for everything already recovered.
        self.local_set.apply_next(&mut cs, Direction::Remove);
        self.remote_recovered.apply_next(&mut cs, Direction::Remove);
        self.local_recovered.apply_next(&mut cs, Direction::Add);

        let idx = self.coded.len();
        let candidate = cs.count == 1 || cs.count == -1;
        self.coded.push(cs);
        self.queued.push(candidate);
        if candidate {
            self.pure_queue.push(idx);
        }
        self.peel();
        // Termination indicator (§4.1): cell 0 drained to empty. Evaluated
        // once per ingested symbol so `is_decoded` is a cached-flag read.
        self.decoded = self.coded[0].is_empty_cell();
    }

    /// Runs the peeling loop until no pure cells remain.
    ///
    /// Queue entries are *candidates* (`count` hit ±1 at some mutation);
    /// purity is verified once per pop, with a single hash of the cell's
    /// sum. Candidates whose count has since moved away from ±1 are dropped
    /// with no hash at all. Verified symbols are *taken* out of their source
    /// cells (which drain to empty anyway) rather than cloned, then
    /// propagated in batches of up to [`PEEL_LANES`].
    ///
    /// Batching is sound because peeling is confluent (the set of symbols
    /// recoverable by repeated pure-cell removal is unique regardless of
    /// order), and because the members of one batch can never be mapped to
    /// each other's source cells: if symbol `B` were mapped to the source
    /// cell of batch-mate `A`, that cell would still contain `B`'s
    /// (unpropagated) contribution and could not have passed `A`'s purity
    /// check.
    fn peel(&mut self) {
        loop {
            // Phase 1: pop candidates until a batch of verified pure cells
            // is assembled (or the queue runs dry).
            let mut batch = std::mem::take(&mut self.batch);
            batch.clear();
            while batch.len() < PEEL_LANES {
                let Some(idx) = self.pure_queue.pop() else {
                    break;
                };
                self.queued[idx] = false;
                let cell = &self.coded[idx];
                let is_remote = match cell.count {
                    1 => true,
                    -1 => false,
                    // The cell was resolved (or re-mixed) while it sat in
                    // the queue; a later mutation re-queues it if it turns
                    // pure again.
                    _ => continue,
                };
                let hash = cell.checksum;
                // The same symbol can sit pure in two cells at once; peel
                // it once and let its propagation drain the sibling cell.
                if batch.iter().any(|(h, _, _)| h.hash == hash) {
                    continue;
                }
                if cell.sum.hash_with(self.key) != hash {
                    // count == ±1 but several symbols are mixed in (§3).
                    continue;
                }
                // A pure cell holds exactly its one symbol: sum is the
                // symbol, checksum is its hash. Peeling empties the cell,
                // so settle it by moving the fields out; the propagation
                // walk skips it below.
                let symbol = std::mem::take(&mut self.coded[idx].sum);
                self.coded[idx].checksum = 0;
                self.coded[idx].count = 0;
                batch.push((HashedSymbol::with_hash(symbol, hash), is_remote, idx));
            }
            if batch.is_empty() {
                // The inner loop only stops short of a full batch when the
                // queue is drained, so peeling is complete.
                self.batch = batch;
                return;
            }
            self.recover_batch(&batch);
            self.register_recovered(batch);
        }
    }

    /// Phase 2 of [`Self::peel`]: removes each freshly recovered symbol from
    /// every stored coded symbol it is mapped to (except its own source
    /// cell, already settled) and queues any cells that became candidates.
    ///
    /// Each wave first *generates* up to [`WAVE_STEPS`] mapped indices
    /// per lane — interleaved one step per lane so the serial index-sampling
    /// chains overlap — prefetching each target cell as its index appears,
    /// and only then *applies* the wave's touches. Deferring the touches is
    /// sound: XOR and count updates commute, per-lane application order is
    /// preserved, and a cell left at count ±1 by the fixpoint is always
    /// queued by whichever mutation put it there (reordering can only add
    /// spurious candidates, which the pop-time purity check discards).
    fn recover_batch(&mut self, batch: &[(HashedSymbol<S>, bool, usize)]) {
        let received = self.coded.len() as u64;
        let mut mappings = std::mem::take(&mut self.batch_mappings);
        mappings.clear();
        for (hashed, _, _) in batch {
            mappings.push(IndexMapping::with_alpha(hashed.hash, self.alpha));
        }
        let mut live = batch.len();
        let mut done = [false; PEEL_LANES];
        let mut pending = std::mem::take(&mut self.pending);
        while live > 0 {
            pending.clear();
            for _ in 0..WAVE_STEPS {
                if live == 0 {
                    break;
                }
                for (lane, mapping) in mappings.iter_mut().enumerate() {
                    if done[lane] {
                        continue;
                    }
                    let idx = mapping.current_index();
                    if idx >= received {
                        done[lane] = true;
                        live -= 1;
                        continue;
                    }
                    mapping.advance();
                    let idx = idx as usize;
                    prefetch(&self.coded[idx]);
                    pending.push((lane, idx));
                }
            }
            for &(lane, idx) in &pending {
                let (hashed, is_remote, source_idx) = &batch[lane];
                if idx == *source_idx {
                    continue;
                }
                let cell = &mut self.coded[idx];
                cell.apply(
                    hashed,
                    if *is_remote {
                        Direction::Remove
                    } else {
                        Direction::Add
                    },
                );
                if (cell.count == 1 || cell.count == -1) && !self.queued[idx] {
                    self.queued[idx] = true;
                    self.pure_queue.push(idx);
                }
            }
        }
        self.pending = pending;
        self.batch_mappings = mappings;
    }

    /// Registers a propagated batch with the recovered-symbol windows so
    /// *future* incoming coded symbols are adjusted too, and returns the
    /// batch scratch buffer to the decoder.
    fn register_recovered(&mut self, mut batch: Vec<(HashedSymbol<S>, bool, usize)>) {
        for ((hashed, is_remote, _), mapping) in batch.drain(..).zip(self.batch_mappings.drain(..))
        {
            if is_remote {
                self.remote_recovered.push_with_mapping(hashed, mapping);
            } else {
                self.local_recovered.push_with_mapping(hashed, mapping);
            }
        }
        self.batch = batch;
    }

    /// True once every difference symbol has been recovered.
    ///
    /// Detection uses the paper's termination indicator: coded symbol 0
    /// contains every unrecovered difference symbol, so reconciliation is
    /// complete exactly when it has drained to the empty cell. The check
    /// reads a flag refreshed once per ingested symbol — no bytes are
    /// rescanned here.
    #[inline]
    pub fn is_decoded(&self) -> bool {
        self.decoded
    }

    /// Symbols recovered so far that only the remote set contains (A \ B).
    pub fn remote_symbols(&self) -> impl Iterator<Item = &S> {
        self.remote_recovered.symbols().iter().map(|h| &h.symbol)
    }

    /// Symbols recovered so far that only the local set contains (B \ A).
    pub fn local_symbols(&self) -> impl Iterator<Item = &S> {
        self.local_recovered.symbols().iter().map(|h| &h.symbol)
    }

    /// Number of difference symbols recovered so far.
    pub fn recovered_count(&self) -> usize {
        self.remote_recovered.len() + self.local_recovered.len()
    }

    /// Consumes the decoder, returning the recovered difference.
    ///
    /// Call [`Self::is_decoded`] first if you need the *complete*
    /// difference; this returns whatever has been recovered so far.
    pub fn into_difference(self) -> SetDifference<S> {
        SetDifference {
            remote_only: self
                .remote_recovered
                .symbols()
                .iter()
                .map(|h| h.symbol.clone())
                .collect(),
            local_only: self
                .local_recovered
                .symbols()
                .iter()
                .map(|h| h.symbol.clone())
                .collect(),
        }
    }

    /// Returns the recovered difference, failing if decoding is incomplete.
    pub fn try_into_difference(self) -> Result<SetDifference<S>> {
        if !self.is_decoded() {
            return Err(Error::DecodeIncomplete);
        }
        Ok(self.into_difference())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::symbol::FixedBytes;
    use std::collections::BTreeSet;

    type Sym = FixedBytes<8>;

    /// Reconciles two integer sets and checks the recovered difference.
    fn reconcile(alice: &[u64], bob: &[u64]) -> (usize, SetDifference<Sym>) {
        let mut enc = Encoder::<Sym>::new();
        for &x in alice {
            enc.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut dec = Decoder::<Sym>::new();
        for &x in bob {
            dec.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut used = 0;
        while !dec.is_decoded() {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
            used += 1;
            assert!(used < 10_000, "decoder failed to converge");
        }
        (used, dec.into_difference())
    }

    fn as_set(items: &[Sym]) -> BTreeSet<u64> {
        items.iter().map(|s| s.to_u64()).collect()
    }

    #[test]
    fn recovers_small_difference() {
        let alice: Vec<u64> = (0..1000).collect();
        let bob: Vec<u64> = (5..1005).collect();
        let (_, diff) = reconcile(&alice, &bob);
        assert_eq!(as_set(&diff.remote_only), (0..5).collect());
        assert_eq!(as_set(&diff.local_only), (1000..1005).collect());
    }

    #[test]
    fn identical_sets_terminate_after_one_symbol() {
        let set: Vec<u64> = (0..500).collect();
        let (used, diff) = reconcile(&set, &set);
        assert_eq!(used, 1);
        assert!(diff.is_empty());
    }

    #[test]
    fn handles_empty_local_set() {
        // Bob knows nothing: the whole of A is the difference.
        let alice: Vec<u64> = (100..164).collect();
        let (_, diff) = reconcile(&alice, &[]);
        assert_eq!(as_set(&diff.remote_only), (100..164).collect());
        assert!(diff.local_only.is_empty());
    }

    #[test]
    fn handles_empty_remote_set() {
        let bob: Vec<u64> = (0..64).collect();
        let (_, diff) = reconcile(&[], &bob);
        assert!(diff.remote_only.is_empty());
        assert_eq!(as_set(&diff.local_only), (0..64).collect());
    }

    #[test]
    fn overhead_is_moderate_for_moderate_differences() {
        // d = 200 differences; the paper's average overhead is ≈1.4–1.5 in
        // this regime, and individual runs rarely exceed 2.5.
        let alice: Vec<u64> = (0..10_000).collect();
        let bob: Vec<u64> = (100..10_100).collect();
        let (used, diff) = reconcile(&alice, &bob);
        assert_eq!(diff.len(), 200);
        assert!(used <= 500, "used {used} coded symbols for d=200");
    }

    #[test]
    fn symbol_added_after_decoding_started_is_rejected() {
        let mut dec = Decoder::<Sym>::new();
        dec.add_symbol(Sym::from_u64(1)).unwrap();
        dec.add_coded_symbol(CodedSymbol::new());
        assert_eq!(
            dec.add_symbol(Sym::from_u64(2)),
            Err(Error::SymbolAddedAfterDecodingStarted)
        );
    }

    #[test]
    fn try_into_difference_requires_completion() {
        let mut enc = Encoder::<Sym>::new();
        for i in 0..100u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let mut dec = Decoder::<Sym>::new();
        // One coded symbol cannot possibly decode 100 differences.
        dec.add_coded_symbol(enc.produce_next_coded_symbol());
        assert!(!dec.is_decoded());
        assert_eq!(
            dec.try_into_difference().unwrap_err(),
            Error::DecodeIncomplete
        );
    }

    #[test]
    fn keys_must_match_between_encoder_and_decoder() {
        let mut enc = Encoder::<Sym>::with_key(SipKey::new(1, 1));
        for i in 0..20u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let mut dec = Decoder::<Sym>::with_key(SipKey::new(2, 2));
        for i in 10..30u64 {
            dec.add_symbol(Sym::from_u64(i)).unwrap();
        }
        // With mismatched keys the common items do not cancel, so after a
        // generous number of coded symbols the decoder still is not done.
        for _ in 0..200 {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
        }
        assert!(!dec.is_decoded());
    }

    #[test]
    fn decoding_progress_is_monotonic() {
        let alice: Vec<u64> = (0..5000).collect();
        let bob: Vec<u64> = (250..5250).collect();
        let mut enc = Encoder::<Sym>::new();
        for &x in &alice {
            enc.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut dec = Decoder::<Sym>::new();
        for &x in &bob {
            dec.add_symbol(Sym::from_u64(x)).unwrap();
        }
        let mut last = 0;
        for _ in 0..3000 {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
            let now = dec.recovered_count();
            assert!(now >= last);
            last = now;
            if dec.is_decoded() {
                break;
            }
        }
        assert!(dec.is_decoded());
        assert_eq!(dec.recovered_count(), 500);
    }

    #[test]
    fn large_difference_decodes_with_reasonable_overhead() {
        let alice: Vec<u64> = (0..30_000).collect();
        let bob: Vec<u64> = (1_000..31_000).collect();
        let (used, diff) = reconcile(&alice, &bob);
        assert_eq!(diff.len(), 2_000);
        let overhead = used as f64 / 2_000.0;
        assert!(
            overhead < 1.8,
            "overhead {overhead:.2} should be below 1.8 for d=2000"
        );
    }
}
