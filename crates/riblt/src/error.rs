//! Error types of the Rateless IBLT library.

use std::fmt;

/// Errors reported by encoders, decoders, sketches and the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A source symbol was added to a streaming encoder after it had already
    /// produced coded symbols. Prefixes of the coded-symbol sequence already
    /// sent would not include the new symbol, breaking linearity; use
    /// [`crate::SketchCache`] (which patches the materialized prefix) when
    /// the set changes while coded symbols are cached.
    SymbolAddedAfterEncodingStarted,
    /// A source symbol was added to a decoder after coded symbols had been
    /// ingested. The decoder must know the full local set before it starts
    /// subtracting it from the incoming stream.
    SymbolAddedAfterDecodingStarted,
    /// Sketches of different sizes (or built with different keys/parameters)
    /// were combined.
    SketchShapeMismatch {
        /// Size (number of coded symbols) of the left operand.
        left: usize,
        /// Size of the right operand.
        right: usize,
    },
    /// The peeling decoder stopped before recovering every source symbol
    /// (more coded symbols are needed).
    DecodeIncomplete,
    /// The wire decoder encountered a malformed or truncated byte stream.
    WireFormat(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SymbolAddedAfterEncodingStarted => write!(
                f,
                "source symbol added after the encoder started producing coded symbols"
            ),
            Error::SymbolAddedAfterDecodingStarted => write!(
                f,
                "source symbol added after the decoder started ingesting coded symbols"
            ),
            Error::SketchShapeMismatch { left, right } => {
                write!(f, "sketch shape mismatch: {left} vs {right} coded symbols")
            }
            Error::DecodeIncomplete => {
                write!(f, "peeling stalled before recovering all source symbols")
            }
            Error::WireFormat(msg) => write!(f, "malformed wire data: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            Error::SymbolAddedAfterEncodingStarted.to_string(),
            Error::SymbolAddedAfterDecodingStarted.to_string(),
            Error::SketchShapeMismatch { left: 3, right: 5 }.to_string(),
            Error::DecodeIncomplete.to_string(),
            Error::WireFormat("truncated").to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(Error::SketchShapeMismatch { left: 3, right: 5 }
            .to_string()
            .contains("3 vs 5"));
    }
}
