//! A small protocol layer driving a complete reconciliation session over any
//! message-oriented transport.
//!
//! The paper's protocol (§4.1) is deliberately minimal: Alice streams coded
//! symbols; Bob tells her to stop once he has decoded. [`SenderSession`] and
//! [`ReceiverSession`] package that loop, including the wire encoding of §6,
//! so applications (and the network-simulation experiments) only move opaque
//! byte messages.

use riblt_hash::SipKey;

use crate::decoder::{Decoder, SetDifference};
use crate::encoder::Encoder;
use crate::error::Result;
use crate::symbol::Symbol;
use crate::wire::SymbolCodec;

/// Messages exchanged during a reconciliation session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionMessage {
    /// Sender → receiver: a batch of coded symbols (wire bytes, §6 format).
    CodedSymbols(Vec<u8>),
    /// Receiver → sender: reconciliation finished, stop streaming.
    Done,
}

impl SessionMessage {
    /// Size of the message on the wire in bytes (payload plus a 1-byte tag).
    pub fn wire_size(&self) -> usize {
        match self {
            SessionMessage::CodedSymbols(bytes) => bytes.len() + 1,
            SessionMessage::Done => 1,
        }
    }
}

/// Which side of the session a party plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconcileRole {
    /// Streams coded symbols (Alice).
    Sender,
    /// Decodes and signals completion (Bob).
    Receiver,
}

/// The streaming side of a session (Alice).
#[derive(Debug, Clone)]
pub struct SenderSession<S: Symbol> {
    encoder: Encoder<S>,
    codec: SymbolCodec,
    batch_size: usize,
}

impl<S: Symbol> SenderSession<S> {
    /// Creates a sender for `items`, each `symbol_len` bytes long, sending
    /// `batch_size` coded symbols per message.
    pub fn new<I>(items: I, symbol_len: usize, batch_size: usize) -> Self
    where
        I: IntoIterator<Item = S>,
    {
        Self::with_key(items, symbol_len, batch_size, SipKey::default())
    }

    /// Like [`Self::new`] with a secret checksum key.
    pub fn with_key<I>(items: I, symbol_len: usize, batch_size: usize, key: SipKey) -> Self
    where
        I: IntoIterator<Item = S>,
    {
        assert!(batch_size > 0, "batch size must be positive");
        let mut encoder = Encoder::with_key(key);
        let mut count = 0u64;
        for item in items {
            encoder
                .add_symbol(item)
                .expect("fresh encoder cannot have started emitting");
            count += 1;
        }
        SenderSession {
            encoder,
            codec: SymbolCodec::new(symbol_len, count),
            batch_size,
        }
    }

    /// Number of items in the sender's set.
    pub fn set_size(&self) -> u64 {
        self.codec.set_size
    }

    /// Index of the next coded symbol to be sent.
    pub fn next_index(&self) -> u64 {
        self.encoder.next_index()
    }

    /// Produces the next batch message.
    pub fn next_message(&mut self) -> SessionMessage {
        let start = self.encoder.next_index();
        let batch = self.encoder.produce_coded_symbols(self.batch_size);
        SessionMessage::CodedSymbols(self.codec.encode_batch(&batch, start))
    }
}

/// The decoding side of a session (Bob).
#[derive(Debug, Clone)]
pub struct ReceiverSession<S: Symbol> {
    decoder: Decoder<S>,
    codec: SymbolCodec,
}

impl<S: Symbol> ReceiverSession<S> {
    /// Creates a receiver holding `items` of `symbol_len` bytes each.
    pub fn new<I>(items: I, symbol_len: usize) -> Self
    where
        I: IntoIterator<Item = S>,
    {
        Self::with_key(items, symbol_len, SipKey::default())
    }

    /// Like [`Self::new`] with a secret checksum key (must match the
    /// sender's).
    pub fn with_key<I>(items: I, symbol_len: usize, key: SipKey) -> Self
    where
        I: IntoIterator<Item = S>,
    {
        let mut decoder = Decoder::with_key(key);
        for item in items {
            decoder
                .add_symbol(item)
                .expect("fresh decoder cannot have started ingesting");
        }
        ReceiverSession {
            decoder,
            codec: SymbolCodec::new(symbol_len, 0),
        }
    }

    /// Handles one incoming message. Returns `Ok(true)` once reconciliation
    /// is complete (the caller should then send [`SessionMessage::Done`]).
    pub fn handle(&mut self, message: &SessionMessage) -> Result<bool> {
        match message {
            SessionMessage::CodedSymbols(bytes) => {
                let batch = self.codec.decode_batch::<S>(bytes)?;
                for cs in batch.symbols {
                    if self.decoder.is_decoded() {
                        break;
                    }
                    self.decoder.add_coded_symbol(cs);
                }
                Ok(self.decoder.is_decoded())
            }
            SessionMessage::Done => Ok(self.decoder.is_decoded()),
        }
    }

    /// Number of coded symbols consumed so far.
    pub fn coded_symbols_received(&self) -> usize {
        self.decoder.coded_symbols_received()
    }

    /// True once reconciliation is complete.
    pub fn is_done(&self) -> bool {
        self.decoder.is_decoded()
    }

    /// Consumes the session, returning the recovered difference.
    pub fn into_difference(self) -> SetDifference<S> {
        self.decoder.into_difference()
    }
}

/// Runs a complete session in memory (useful for tests and simulations).
///
/// Returns the recovered difference, the number of coded symbols consumed by
/// the receiver, and the total bytes the sender transmitted.
pub fn run_in_memory<S: Symbol>(
    mut sender: SenderSession<S>,
    mut receiver: ReceiverSession<S>,
    max_messages: usize,
) -> Result<(SetDifference<S>, usize, usize)> {
    let mut bytes_sent = 0usize;
    for _ in 0..max_messages {
        let msg = sender.next_message();
        bytes_sent += msg.wire_size();
        if receiver.handle(&msg)? {
            let used = receiver.coded_symbols_received();
            return Ok((receiver.into_difference(), used, bytes_sent));
        }
    }
    Err(crate::error::Error::DecodeIncomplete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::FixedBytes;

    type Sym = FixedBytes<8>;

    fn items(range: std::ops::Range<u64>) -> Vec<Sym> {
        range.map(Sym::from_u64).collect()
    }

    #[test]
    fn full_session_reconciles() {
        let sender = SenderSession::new(items(0..3_000), 8, 16);
        let receiver = ReceiverSession::new(items(100..3_100), 8);
        let (diff, used, bytes) = run_in_memory(sender, receiver, 10_000).unwrap();
        assert_eq!(diff.remote_only.len(), 100);
        assert_eq!(diff.local_only.len(), 100);
        // ≈ 1.35–1.9 × 200 coded symbols; batching rounds up to 16.
        assert!(used <= 600, "used {used}");
        assert!(bytes > 0);
    }

    #[test]
    fn identical_sets_finish_in_one_batch() {
        let sender = SenderSession::new(items(0..500), 8, 8);
        let receiver = ReceiverSession::new(items(0..500), 8);
        let (diff, used, _) = run_in_memory(sender, receiver, 100).unwrap();
        assert!(diff.is_empty());
        assert!(used <= 8);
    }

    #[test]
    fn message_cap_is_respected() {
        // With a ridiculous cap the session errors out instead of looping.
        let sender = SenderSession::new(items(0..1_000), 8, 1);
        let receiver = ReceiverSession::new(Vec::<Sym>::new(), 8);
        assert!(run_in_memory(sender, receiver, 3).is_err());
    }

    #[test]
    fn wire_size_accounts_for_payload() {
        let mut sender = SenderSession::new(items(0..100), 8, 4);
        let msg = sender.next_message();
        assert!(msg.wire_size() > 4 * 16);
        assert_eq!(SessionMessage::Done.wire_size(), 1);
    }

    #[test]
    fn keyed_sessions_reconcile() {
        let key = SipKey::new(7, 9);
        let sender = SenderSession::with_key(items(0..800), 8, 32, key);
        let receiver = ReceiverSession::with_key(items(10..810), 8, key);
        let (diff, _, _) = run_in_memory(sender, receiver, 1_000).unwrap();
        assert_eq!(diff.len(), 20);
    }
}
