//! # Rateless Invertible Bloom Lookup Tables (Rateless IBLT)
//!
//! A Rust implementation of the set-reconciliation scheme from *Practical
//! Rateless Set Reconciliation* (Yang, Gilad, Alizadeh — ACM SIGCOMM 2024).
//!
//! Two parties, Alice and Bob, each hold a set of fixed-length items and
//! want to learn the symmetric difference. Alice encodes her set into an
//! *infinite* stream of coded symbols; Bob subtracts his own contribution
//! and peels the result. With high probability Bob finishes after receiving
//! roughly `1.35–1.72 × d` coded symbols, where `d` is the size of the
//! difference — no matter how large the sets are and without either party
//! knowing `d` in advance.
//!
//! ## Quick start
//!
//! ```
//! use riblt::{Decoder, Encoder, FixedBytes};
//!
//! type Item = FixedBytes<32>;
//!
//! // Alice's set.
//! let mut alice = Encoder::<Item>::new();
//! for i in 0..1_000u64 {
//!     alice.add_symbol(Item::from_u64(i)).unwrap();
//! }
//!
//! // Bob's set differs in a handful of items.
//! let mut bob = Decoder::<Item>::new();
//! for i in 3..1_003u64 {
//!     bob.add_symbol(Item::from_u64(i)).unwrap();
//! }
//!
//! // Alice streams coded symbols until Bob signals completion.
//! let mut sent = 0;
//! while !bob.is_decoded() {
//!     bob.add_coded_symbol(alice.produce_next_coded_symbol());
//!     sent += 1;
//! }
//! let diff = bob.into_difference();
//! assert_eq!(diff.remote_only.len() + diff.local_only.len(), 6);
//! assert!(sent <= 30); // ≈ 1.35–1.72 × d, not 1,000
//! ```
//!
//! ## Module map
//!
//! * [`symbol`] — the [`Symbol`] trait and ready-made item types.
//! * [`mapping`] — the ρ(i) = 1/(1+αi) index mapping and its O(1) sampler.
//! * [`coded`] — coded-symbol format and arithmetic.
//! * [`encoder`] / [`decoder`] — the streaming protocol endpoints.
//! * [`sketch`] — fixed-size sketches and incrementally maintained caches.
//! * [`irregular`] — the Irregular Rateless IBLT extension (paper §8).
//! * [`wire`] — the byte-level wire format with compressed `count` fields
//!   (paper §6).
//!
//! Full reconciliation *sessions* (request/stream/stop over an arbitrary
//! message transport) are driven by the scheme-agnostic engine in the
//! `reconcile-core` crate, which plugs this crate in through its
//! `ReconcileBackend` trait.

#![deny(missing_docs)]

pub mod coded;
pub mod decoder;
pub mod encoder;
pub mod error;
pub mod irregular;
pub mod mapping;
pub mod sketch;
pub mod symbol;
pub mod wire;

pub use coded::{CodedSymbol, Direction, PeelState};
pub use decoder::{Decoder, SetDifference};
pub use encoder::Encoder;
pub use error::{Error, Result};
pub use irregular::{IrregularClasses, IrregularDecoder, IrregularEncoder, IrregularSketch};
pub use mapping::{rho, IndexMapping, DEFAULT_ALPHA};
pub use sketch::{Sketch, SketchCache};
pub use symbol::{xor_bytes_in_place, FixedBytes, HashedSymbol, Symbol, VecSymbol};
pub use wire::{decode_coded_symbols, encode_coded_symbols, SymbolCodec};

/// Re-export of the keyed-hash key type used throughout the API.
pub use riblt_hash::SipKey;
