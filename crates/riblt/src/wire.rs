//! Wire format for coded symbols (paper §6, "variable-length encoding for
//! count").
//!
//! A coded symbol carries three fields. The `sum` is exactly as long as a
//! source symbol and the `checksum` is 8 bytes; neither compresses. The
//! `count` field, however, follows a known pattern: the i-th coded symbol of
//! a set of size `N` is expected to hold `N·ρ(i)` source symbols. We
//! therefore transmit only the *difference* between the actual count and
//! that expectation, zig-zag encoded as a variable-length quantity (VLQ), so
//! the field typically costs a single byte even for million-item sets.
//!
//! The set size `N` travels with the first coded symbol of the stream (the
//! paper transmits it alongside symbol 0); subsequent batches only need the
//! starting sequence index, which an ordered transport provides implicitly.

use crate::coded::CodedSymbol;
use crate::error::{Error, Result};
use crate::mapping::rho;
use crate::symbol::Symbol;

/// Magic bytes prefixing every batch ("RIbt").
const MAGIC: [u8; 4] = *b"RIbt";
/// Wire format version.
const VERSION: u8 = 1;

/// Reads just the envelope of an encoded batch — its start index and
/// symbol count — without decoding the symbols.
///
/// Datagram transports use this to sequence reorder-buffered batches (the
/// decoder consumes symbols positionally) before paying for the full
/// decode; the extent lives entirely in the fixed header VLQs.
pub fn peek_batch_extent(bytes: &[u8]) -> Result<(u64, usize)> {
    let mut pos = 0usize;
    if bytes.len() < 5 || bytes[..4] != MAGIC {
        return Err(Error::WireFormat("bad magic"));
    }
    pos += 4;
    if bytes[pos] != VERSION {
        return Err(Error::WireFormat("unsupported version"));
    }
    pos += 1;
    let _symbol_len = read_vlq(bytes, &mut pos)?;
    let _set_size = read_vlq(bytes, &mut pos)?;
    let start_index = read_vlq(bytes, &mut pos)?;
    let batch_len = read_vlq(bytes, &mut pos)? as usize;
    Ok((start_index, batch_len))
}

/// Writes `value` as a VLQ (7 bits per byte, MSB = continuation).
pub fn write_vlq(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a VLQ, advancing `pos`. Returns an error on truncation or overflow.
pub fn read_vlq(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or(Error::WireFormat("truncated VLQ"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(Error::WireFormat("VLQ overflows 64 bits"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zig-zag maps a signed value onto an unsigned one (small magnitudes stay
/// small).
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Expected `count` of the coded symbol at sequence index `index` for a set
/// of `set_size` items (rounded to the nearest integer).
#[inline]
pub fn expected_count(set_size: u64, index: u64, alpha: f64) -> i64 {
    (set_size as f64 * rho(alpha, index)).round() as i64
}

/// Codec for batches of coded symbols of one reconciliation stream.
#[derive(Debug, Clone, Copy)]
pub struct SymbolCodec {
    /// Length in bytes of every source symbol.
    pub symbol_len: usize,
    /// Size of the encoded set (drives the expected `count` values).
    pub set_size: u64,
    /// Mapping parameter (α = 0.5 in the final design).
    pub alpha: f64,
}

impl SymbolCodec {
    /// Creates a codec for `symbol_len`-byte symbols of a `set_size`-item
    /// set using the default α.
    pub fn new(symbol_len: usize, set_size: u64) -> Self {
        Self::with_alpha(symbol_len, set_size, crate::mapping::DEFAULT_ALPHA)
    }

    /// Creates a codec with an explicit mapping parameter α (must match the
    /// encoder that produced the coded symbols — see
    /// [`crate::Encoder::alpha`]).
    pub fn with_alpha(symbol_len: usize, set_size: u64, alpha: f64) -> Self {
        SymbolCodec {
            symbol_len,
            set_size,
            alpha,
        }
    }

    /// Serializes a batch of coded symbols whose first element has sequence
    /// index `start_index`.
    ///
    /// Layout: magic, version, VLQ(symbol_len), VLQ(set_size),
    /// VLQ(start_index), VLQ(batch_len), then per symbol:
    /// `sum` (symbol_len bytes) · `checksum` (8 bytes LE) ·
    /// zig-zag VLQ(count − expected_count).
    pub fn encode_batch<S: Symbol>(&self, symbols: &[CodedSymbol<S>], start_index: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + symbols.len() * (self.symbol_len + 9));
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        write_vlq(&mut out, self.symbol_len as u64);
        write_vlq(&mut out, self.set_size);
        write_vlq(&mut out, start_index);
        write_vlq(&mut out, symbols.len() as u64);
        for (offset, cs) in symbols.iter().enumerate() {
            let index = start_index + offset as u64;
            let sum_bytes = cs.sum.as_bytes();
            if sum_bytes.is_empty() {
                // Empty cells of variable-length symbol types have no width
                // yet; transmit an all-zero sum of the declared length.
                out.extend(std::iter::repeat_n(0u8, self.symbol_len));
            } else {
                debug_assert_eq!(sum_bytes.len(), self.symbol_len);
                out.extend_from_slice(sum_bytes);
            }
            out.extend_from_slice(&cs.checksum.to_le_bytes());
            let expected = expected_count(self.set_size, index, self.alpha);
            write_vlq(&mut out, zigzag_encode(cs.count - expected));
        }
        out
    }

    /// Deserializes a batch produced by [`Self::encode_batch`].
    ///
    /// Returns the coded symbols together with the start index and the set
    /// size declared by the sender. The codec's own `symbol_len` is checked
    /// against the header; `set_size`/`alpha` from the header are used for
    /// count reconstruction.
    pub fn decode_batch<S: Symbol>(&self, bytes: &[u8]) -> Result<DecodedBatch<S>> {
        let mut pos = 0usize;
        if bytes.len() < 5 || bytes[..4] != MAGIC {
            return Err(Error::WireFormat("bad magic"));
        }
        pos += 4;
        if bytes[pos] != VERSION {
            return Err(Error::WireFormat("unsupported version"));
        }
        pos += 1;
        let symbol_len = read_vlq(bytes, &mut pos)? as usize;
        if symbol_len != self.symbol_len {
            return Err(Error::WireFormat("symbol length mismatch"));
        }
        let set_size = read_vlq(bytes, &mut pos)?;
        let start_index = read_vlq(bytes, &mut pos)?;
        let batch_len = read_vlq(bytes, &mut pos)? as usize;
        // Each symbol needs at least sum + checksum + 1 count byte; a batch
        // length beyond that is corrupt, and rejecting it here also bounds
        // the allocation below.
        if batch_len > (bytes.len() - pos) / (symbol_len + 9) + 1 {
            return Err(Error::WireFormat("implausible batch length"));
        }
        let mut symbols = Vec::with_capacity(batch_len);
        for offset in 0..batch_len {
            let index = start_index + offset as u64;
            let end = pos + symbol_len;
            if end > bytes.len() {
                return Err(Error::WireFormat("truncated sum"));
            }
            let sum = S::from_bytes(&bytes[pos..end]);
            pos = end;
            if pos + 8 > bytes.len() {
                return Err(Error::WireFormat("truncated checksum"));
            }
            let mut cbytes = [0u8; 8];
            cbytes.copy_from_slice(&bytes[pos..pos + 8]);
            let checksum = u64::from_le_bytes(cbytes);
            pos += 8;
            let delta = zigzag_decode(read_vlq(bytes, &mut pos)?);
            let count = expected_count(set_size, index, self.alpha) + delta;
            symbols.push(CodedSymbol {
                sum,
                checksum,
                count,
            });
        }
        Ok(DecodedBatch {
            symbols,
            start_index,
            set_size,
        })
    }

    /// Number of bytes the `count` fields of `symbols` occupy on the wire
    /// (used by the §6 compression experiment).
    pub fn count_field_bytes<S: Symbol>(
        &self,
        symbols: &[CodedSymbol<S>],
        start_index: u64,
    ) -> usize {
        let mut total = 0usize;
        for (offset, cs) in symbols.iter().enumerate() {
            let index = start_index + offset as u64;
            let expected = expected_count(self.set_size, index, self.alpha);
            let mut buf = Vec::new();
            write_vlq(&mut buf, zigzag_encode(cs.count - expected));
            total += buf.len();
        }
        total
    }
}

/// Result of decoding one wire batch.
#[derive(Debug, Clone)]
pub struct DecodedBatch<S: Symbol> {
    /// The coded symbols in sequence order.
    pub symbols: Vec<CodedSymbol<S>>,
    /// Sequence index of the first symbol in the batch.
    pub start_index: u64,
    /// Set size declared by the sender.
    pub set_size: u64,
}

/// Convenience wrapper: serializes `symbols` (a prefix starting at index 0)
/// for a set of `set_size` items of `symbol_len` bytes each.
pub fn encode_coded_symbols<S: Symbol>(
    symbols: &[CodedSymbol<S>],
    symbol_len: usize,
    set_size: u64,
) -> Vec<u8> {
    SymbolCodec::new(symbol_len, set_size).encode_batch(symbols, 0)
}

/// Convenience wrapper for [`SymbolCodec::decode_batch`].
pub fn decode_coded_symbols<S: Symbol>(
    bytes: &[u8],
    symbol_len: usize,
) -> Result<Vec<CodedSymbol<S>>> {
    // The set size in the header drives count reconstruction; the codec's
    // set_size field is irrelevant for decoding, so pass 0.
    let codec = SymbolCodec {
        symbol_len,
        set_size: 0,
        alpha: crate::mapping::DEFAULT_ALPHA,
    };
    Ok(codec.decode_batch(bytes)?.symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::symbol::FixedBytes;

    type Sym = FixedBytes<8>;

    #[test]
    fn peek_extent_matches_the_full_decode() {
        let mut encoder = Encoder::<Sym>::new();
        for i in 0..50u64 {
            encoder.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let cells: Vec<CodedSymbol<Sym>> = (0..20)
            .map(|_| encoder.produce_next_coded_symbol())
            .collect();
        let codec = SymbolCodec::new(8, 50);
        let bytes = codec.encode_batch(&cells[5..15], 5);
        assert_eq!(peek_batch_extent(&bytes).unwrap(), (5, 10));
        let decoded = codec.decode_batch::<Sym>(&bytes).unwrap();
        assert_eq!(decoded.start_index, 5);
        assert_eq!(decoded.symbols.len(), 10);
        // Truncations inside the envelope error instead of panicking.
        for cut in 0..8 {
            assert!(peek_batch_extent(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn vlq_roundtrip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for v in values {
            let mut buf = Vec::new();
            write_vlq(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_vlq(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn vlq_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_vlq(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_vlq(&mut buf, 200);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            -1_000_000i64,
            -2,
            -1,
            0,
            1,
            2,
            1_000_000,
            i64::MIN,
            i64::MAX,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes.
        assert!(zigzag_encode(-1) <= 2);
        assert!(zigzag_encode(1) <= 2);
    }

    #[test]
    fn truncated_vlq_is_an_error() {
        let buf = vec![0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(
            read_vlq(&buf, &mut pos).unwrap_err(),
            Error::WireFormat("truncated VLQ")
        );
    }

    #[test]
    fn batch_roundtrip_preserves_symbols() {
        let mut enc = Encoder::<Sym>::new();
        for i in 0..5_000u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let symbols = enc.produce_coded_symbols(300);
        let codec = SymbolCodec::new(8, 5_000);
        let bytes = codec.encode_batch(&symbols, 0);
        let decoded = codec.decode_batch::<Sym>(&bytes).unwrap();
        assert_eq!(decoded.symbols, symbols);
        assert_eq!(decoded.set_size, 5_000);
        assert_eq!(decoded.start_index, 0);
    }

    #[test]
    fn batch_roundtrip_with_nonzero_start_index() {
        let mut enc = Encoder::<Sym>::new();
        for i in 0..1_000u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let _skip = enc.produce_coded_symbols(100);
        let tail = enc.produce_coded_symbols(50);
        let codec = SymbolCodec::new(8, 1_000);
        let bytes = codec.encode_batch(&tail, 100);
        let decoded = codec.decode_batch::<Sym>(&bytes).unwrap();
        assert_eq!(decoded.symbols, tail);
        assert_eq!(decoded.start_index, 100);
    }

    #[test]
    fn count_field_compresses_to_about_one_byte() {
        // The §6 claim: encoding 10^6 items into 10^4 coded symbols costs
        // ≈1.05 bytes of count per coded symbol. We use a smaller set here
        // (unit-test scale) and just check the per-symbol cost stays small;
        // the full-scale measurement lives in the bench harness.
        let n = 100_000u64;
        let mut enc = Encoder::<Sym>::new();
        for i in 0..n {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let m = 2_000;
        let symbols = enc.produce_coded_symbols(m);
        let codec = SymbolCodec::new(8, n);
        let bytes = codec.count_field_bytes(&symbols, 0);
        let per_symbol = bytes as f64 / m as f64;
        assert!(
            per_symbol < 2.0,
            "count field costs {per_symbol:.2} bytes per coded symbol"
        );
    }

    #[test]
    fn corrupted_magic_and_version_are_rejected() {
        let codec = SymbolCodec::new(8, 10);
        let symbols = vec![CodedSymbol::<Sym>::default(); 3];
        let mut bytes = codec.encode_batch(&symbols, 0);
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(codec.decode_batch::<Sym>(&bad_magic).is_err());
        bytes[4] = 99; // version
        assert!(codec.decode_batch::<Sym>(&bytes).is_err());
    }

    #[test]
    fn truncated_batch_is_rejected() {
        let codec = SymbolCodec::new(8, 100);
        let mut enc = Encoder::<Sym>::new();
        for i in 0..100u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let symbols = enc.produce_coded_symbols(10);
        let bytes = codec.encode_batch(&symbols, 0);
        for cut in [bytes.len() - 1, bytes.len() / 2, 6] {
            assert!(codec.decode_batch::<Sym>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn symbol_length_mismatch_is_rejected() {
        let codec8 = SymbolCodec::new(8, 10);
        let codec16 = SymbolCodec::new(16, 10);
        let symbols = vec![CodedSymbol::<Sym>::default(); 1];
        let bytes = codec8.encode_batch(&symbols, 0);
        assert_eq!(
            codec16.decode_batch::<Sym>(&bytes).unwrap_err(),
            Error::WireFormat("symbol length mismatch")
        );
    }

    #[test]
    fn convenience_wrappers_roundtrip() {
        let mut enc = Encoder::<Sym>::new();
        for i in 0..50u64 {
            enc.add_symbol(Sym::from_u64(i)).unwrap();
        }
        let symbols = enc.produce_coded_symbols(20);
        let bytes = encode_coded_symbols(&symbols, 8, 50);
        let back: Vec<CodedSymbol<Sym>> = decode_coded_symbols(&bytes, 8).unwrap();
        assert_eq!(back, symbols);
    }
}
