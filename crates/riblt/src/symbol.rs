//! Source-symbol abstraction.
//!
//! A *source symbol* is an item of the set being reconciled (paper §3): a bit
//! string of some length ℓ. Coded symbols XOR source symbols together, so the
//! only operations the library needs from a symbol type are a zero value,
//! in-place XOR, and a byte view for checksum hashing.
//!
//! Two ready-made symbol types cover the common cases:
//! [`FixedBytes`] for fixed-length items (e.g. 8-byte transaction IDs or
//! 32-byte SHA-256 keys) and [`VecSymbol`] for longer, run-time-sized items
//! (e.g. the 92-byte account records of the Ethereum experiment, or
//! multi-kilobyte blobs in the item-size sweep of Fig. 11).

use riblt_hash::{siphash24, SipKey};

/// A set item that can participate in coded symbols.
///
/// Requirements (mirroring the paper's model):
/// * `Default::default()` is the identity element: `x ⊕ default = x`.
/// * XOR is commutative, associative, and self-inverse (`x ⊕ x = default`).
/// * [`Symbol::as_bytes`] exposes a canonical byte representation used for
///   the keyed checksum; two equal symbols must expose equal bytes.
///
/// **Length invariant:** all symbols mixed into the same sketch, encoder, or
/// decoder must have the same byte length. For variable-length symbol types
/// ([`VecSymbol`]), XOR-ing two symbols of different non-zero lengths is a
/// logic error in the caller; implementations must reject it up front (panic
/// with a message naming both lengths) rather than corrupt state, and the
/// zero-length identity element adopts the width of the first real symbol
/// XOR-ed into it.
pub trait Symbol: Clone + PartialEq + Default {
    /// XORs `other` into `self`.
    ///
    /// This runs on every cell touch of encode, decode, and sketch subtract
    /// — implementations should use [`xor_bytes_in_place`] (or equivalent)
    /// so the compiler can vectorize it, rather than a byte-at-a-time loop.
    fn xor_in_place(&mut self, other: &Self);

    /// Canonical byte view used for checksum hashing.
    fn as_bytes(&self) -> &[u8];

    /// Reconstructs a symbol from its canonical byte view (inverse of
    /// [`Symbol::as_bytes`]); used by the wire codec.
    ///
    /// Implementations may panic if `bytes` has the wrong length for the
    /// symbol type.
    fn from_bytes(bytes: &[u8]) -> Self;

    /// Returns true if this symbol equals the identity element.
    fn is_zero(&self) -> bool {
        self.as_bytes().iter().all(|&b| b == 0)
    }

    /// Computes the keyed 64-bit checksum hash of this symbol (paper §4.3).
    #[inline]
    fn hash_with(&self, key: SipKey) -> u64 {
        siphash24(key, self.as_bytes())
    }
}

/// XORs `src` into `dst`, walking 32-byte blocks of four `u64` lanes — wide
/// enough for the compiler to lower the inner loop to 128/256-bit vector
/// XORs (the same autovectorization contract as the CLMUL fast path in
/// `pinsketch::gf64`) — then 8-byte words, then a byte tail. Byte-for-byte
/// identical to the scalar loop `dst[i] ^= src[i]` for every length.
///
/// Both slices must have equal length; callers enforce the [`Symbol`]
/// length invariant before getting here.
#[inline]
pub fn xor_bytes_in_place(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len(), "xor_bytes_in_place length mismatch");
    let mut dst_blocks = dst.chunks_exact_mut(32);
    let mut src_blocks = src.chunks_exact(32);
    for (d, s) in (&mut dst_blocks).zip(&mut src_blocks) {
        for lane in 0..4 {
            let at = lane * 8;
            let a = u64::from_ne_bytes(d[at..at + 8].try_into().unwrap());
            let b = u64::from_ne_bytes(s[at..at + 8].try_into().unwrap());
            d[at..at + 8].copy_from_slice(&(a ^ b).to_ne_bytes());
        }
    }
    let mut dst_words = dst_blocks.into_remainder().chunks_exact_mut(8);
    let mut src_words = src_blocks.remainder().chunks_exact(8);
    for (d, s) in (&mut dst_words).zip(&mut src_words) {
        let a = u64::from_ne_bytes(d.try_into().unwrap());
        let b = u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&(a ^ b).to_ne_bytes());
    }
    for (a, b) in dst_words
        .into_remainder()
        .iter_mut()
        .zip(src_words.remainder())
    {
        *a ^= *b;
    }
}

/// A fixed-length symbol of `N` bytes.
///
/// This is the work-horse type: `FixedBytes<8>` for the computation-cost
/// experiments (§7.2), `FixedBytes<32>` for the communication-cost
/// experiments (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FixedBytes<const N: usize>(pub [u8; N]);

impl<const N: usize> FixedBytes<N> {
    /// The all-zero symbol.
    pub const ZERO: FixedBytes<N> = FixedBytes([0u8; N]);

    /// Builds a symbol from a `u64` by little-endian encoding into the first
    /// 8 bytes (or fewer if `N < 8`). Handy for synthetic workloads.
    pub fn from_u64(value: u64) -> Self {
        let mut bytes = [0u8; N];
        let src = value.to_le_bytes();
        let n = N.min(8);
        bytes[..n].copy_from_slice(&src[..n]);
        FixedBytes(bytes)
    }

    /// Reads back the `u64` stored by [`Self::from_u64`].
    pub fn to_u64(&self) -> u64 {
        let mut src = [0u8; 8];
        let n = N.min(8);
        src[..n].copy_from_slice(&self.0[..n]);
        u64::from_le_bytes(src)
    }
}

impl<const N: usize> Default for FixedBytes<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Symbol for FixedBytes<N> {
    #[inline]
    fn xor_in_place(&mut self, other: &Self) {
        xor_bytes_in_place(&mut self.0, &other.0);
    }

    #[inline]
    fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), N, "FixedBytes<{N}> from {} bytes", bytes.len());
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        FixedBytes(out)
    }
}

impl<const N: usize> From<[u8; N]> for FixedBytes<N> {
    fn from(bytes: [u8; N]) -> Self {
        FixedBytes(bytes)
    }
}

/// A variable-length symbol backed by a `Vec<u8>`.
///
/// All symbols mixed into the same sketch must have the same length; this is
/// the set-reconciliation model of the paper (items of common length ℓ).
/// Applications with genuinely variable-length items reconcile fixed-length
/// *keys* (hashes) and fetch payloads afterwards, exactly like the Ethereum
/// application in §7.3 reconciles key/value pairs of fixed width.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VecSymbol(pub Vec<u8>);

impl VecSymbol {
    /// Creates a symbol from raw bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        VecSymbol(bytes)
    }

    /// Creates an all-zero symbol of length `len`.
    pub fn zero(len: usize) -> Self {
        VecSymbol(vec![0u8; len])
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the symbol has zero length.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Symbol for VecSymbol {
    fn xor_in_place(&mut self, other: &Self) {
        // Validate before touching any state: a mismatch must not leave
        // `self` resized or half-XOR-ed.
        if !self.0.is_empty() && !other.0.is_empty() && self.0.len() != other.0.len() {
            panic!(
                "VecSymbol XOR requires equal lengths ({} vs {}); all symbols \
                 in one sketch must share one byte width",
                self.0.len(),
                other.0.len()
            );
        }
        if other.0.is_empty() {
            return;
        }
        if self.0.is_empty() {
            // The identity element (`VecSymbol::default()`) carries no width;
            // adopt the width of the first real symbol XOR-ed into it.
            self.0 = other.0.clone();
            return;
        }
        xor_bytes_in_place(&mut self.0, &other.0);
    }

    #[inline]
    fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    fn from_bytes(bytes: &[u8]) -> Self {
        VecSymbol(bytes.to_vec())
    }
}

/// A source symbol paired with its (keyed) checksum hash.
///
/// The hash doubles as the seed of the symbol's index-mapping PRNG, so it is
/// computed once when the symbol enters an encoder/decoder and carried along.
#[derive(Debug, Clone, PartialEq)]
pub struct HashedSymbol<S: Symbol> {
    /// The source symbol itself.
    pub symbol: S,
    /// Keyed 64-bit checksum hash of the symbol.
    pub hash: u64,
}

impl<S: Symbol> HashedSymbol<S> {
    /// Hashes `symbol` under `key` and pairs the two.
    pub fn new(symbol: S, key: SipKey) -> Self {
        let hash = symbol.hash_with(key);
        HashedSymbol { symbol, hash }
    }

    /// Pairs a symbol with a precomputed hash (e.g. when the application
    /// already stores item hashes).
    pub fn with_hash(symbol: S, hash: u64) -> Self {
        HashedSymbol { symbol, hash }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_bytes_xor_roundtrip() {
        let a = FixedBytes::<8>::from_u64(0x1122_3344_5566_7788);
        let b = FixedBytes::<8>::from_u64(0x0102_0304_0506_0708);
        let mut c = a;
        c.xor_in_place(&b);
        c.xor_in_place(&b);
        assert_eq!(c, a);
        let mut d = a;
        d.xor_in_place(&a);
        assert!(d.is_zero());
    }

    #[test]
    fn fixed_bytes_u64_roundtrip() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(FixedBytes::<8>::from_u64(v).to_u64(), v);
        }
        // Narrow symbols truncate.
        assert_eq!(FixedBytes::<4>::from_u64(0x1_0000_0001).to_u64(), 1);
    }

    #[test]
    fn vec_symbol_xor_and_zero() {
        let a = VecSymbol::new(vec![1, 2, 3, 4]);
        let mut z = VecSymbol::default();
        assert!(z.is_zero());
        z.xor_in_place(&a);
        assert_eq!(z, a, "identity adopts the width of the first symbol");
        let mut c = a.clone();
        c.xor_in_place(&a);
        assert!(c.is_zero());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn vec_symbol_length_mismatch_panics() {
        let mut a = VecSymbol::new(vec![1, 2, 3]);
        let b = VecSymbol::new(vec![1, 2]);
        a.xor_in_place(&b);
    }

    #[test]
    fn vec_symbol_untouched_by_rejected_xor() {
        let mut a = VecSymbol::new(vec![1, 2, 3, 4, 5]);
        let b = VecSymbol::new(vec![9; 64]);
        let before = a.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.xor_in_place(&b);
        }));
        assert!(outcome.is_err(), "mismatched XOR must panic");
        assert_eq!(a, before, "validation happens before any mutation");
    }

    /// Scalar reference the chunked path must match byte-for-byte.
    fn scalar_xor(dst: &mut [u8], src: &[u8]) {
        for (a, b) in dst.iter_mut().zip(src) {
            *a ^= *b;
        }
    }

    fn random_buf(gen: &mut riblt_hash::SplitMix64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        gen.fill_bytes(&mut buf);
        buf
    }

    #[test]
    fn chunked_xor_matches_scalar_for_all_lengths() {
        let mut gen = riblt_hash::SplitMix64::new(0x0c0_ffee);
        for len in 0..=257usize {
            let src = random_buf(&mut gen, len);
            let mut chunked = random_buf(&mut gen, len);
            let mut scalar = chunked.clone();
            xor_bytes_in_place(&mut chunked, &src);
            scalar_xor(&mut scalar, &src);
            assert_eq!(chunked, scalar, "length {len}");
        }
    }

    #[test]
    fn vec_symbol_xor_matches_scalar_for_all_lengths() {
        let mut gen = riblt_hash::SplitMix64::new(0x7ec_70e5);
        for len in 0..=257usize {
            let src = random_buf(&mut gen, len);
            let dst = random_buf(&mut gen, len);
            let mut sym = VecSymbol::new(dst.clone());
            sym.xor_in_place(&VecSymbol::new(src.clone()));
            let mut scalar = dst;
            scalar_xor(&mut scalar, &src);
            assert_eq!(sym.0, scalar, "length {len}");
        }
    }

    #[test]
    fn fixed_bytes_xor_matches_scalar_at_boundary_lengths() {
        // `FixedBytes` lengths are const generics, so the 0..=257 sweep is
        // spelled out at every chunking boundary (32-block, 8-word, tail).
        macro_rules! check {
            ($($n:literal),+ $(,)?) => {{
                let mut gen = riblt_hash::SplitMix64::new(0xf1_bed);
                $({
                    let src: [u8; $n] = random_buf(&mut gen, $n).try_into().unwrap();
                    let dst: [u8; $n] = random_buf(&mut gen, $n).try_into().unwrap();
                    let mut sym = FixedBytes(dst);
                    sym.xor_in_place(&FixedBytes(src));
                    let mut scalar = dst;
                    scalar_xor(&mut scalar, &src);
                    assert_eq!(sym.0, scalar, "FixedBytes<{}>", $n);
                })+
            }};
        }
        check!(
            0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32, 33, 39, 40, 41, 47, 48,
            63, 64, 65, 71, 95, 96, 97, 127, 128, 129, 159, 160, 161, 191, 192, 193, 223, 224, 225,
            255, 256, 257
        );
    }

    #[test]
    fn hashes_depend_on_key_and_content() {
        let a = FixedBytes::<8>::from_u64(7);
        let b = FixedBytes::<8>::from_u64(8);
        let k1 = SipKey::new(1, 2);
        let k2 = SipKey::new(3, 4);
        assert_ne!(a.hash_with(k1), b.hash_with(k1));
        assert_ne!(a.hash_with(k1), a.hash_with(k2));
        assert_eq!(a.hash_with(k1), HashedSymbol::new(a, k1).hash);
    }

    #[test]
    fn xor_is_commutative_and_associative() {
        let xs: Vec<FixedBytes<16>> = (1u64..=5)
            .map(|i| {
                let mut b = [0u8; 16];
                b[..8].copy_from_slice(&i.to_le_bytes());
                b[8..].copy_from_slice(&(i * 1000).to_le_bytes());
                FixedBytes(b)
            })
            .collect();
        // Fold in two different orders.
        let mut forward = FixedBytes::<16>::ZERO;
        for x in &xs {
            forward.xor_in_place(x);
        }
        let mut backward = FixedBytes::<16>::ZERO;
        for x in xs.iter().rev() {
            backward.xor_in_place(x);
        }
        assert_eq!(forward, backward);
    }
}
