//! The rateless encoder (paper §4.2, §6).
//!
//! [`Encoder`] turns a set into the infinite coded-symbol sequence
//! `s₀, s₁, s₂, …`, producing one symbol per call. Internally it keeps the
//! *coding window*: a min-heap of source symbols keyed by the next coded
//! symbol index each one is mapped to, so producing the i-th coded symbol
//! touches only the symbols actually mapped to it (the "efficient
//! incremental encoding" optimization of §6) instead of scanning the whole
//! set.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use riblt_hash::SipKey;

use crate::coded::{prefetch, CodedSymbol, Direction};
use crate::error::{Error, Result};
use crate::mapping::{IndexMapping, DEFAULT_ALPHA};
use crate::symbol::{HashedSymbol, Symbol};

/// Sentinel terminating a bucket chain in [`CodingWindow`].
const NO_POS: u32 = u32::MAX;

/// The coding window: source symbols ordered by the next coded-symbol index
/// they are mapped to.
///
/// Shared by the encoder (which *adds* symbols into produced coded symbols)
/// and the decoder (which lazily generates its local set's contribution and
/// subtracts it, and maintains windows of recovered symbols).
///
/// Scheduling uses a calendar queue instead of a binary heap: coded-symbol
/// indices are produced strictly in order 0, 1, 2, …, so each symbol is
/// parked in an O(1) intrusive bucket chain keyed by its next mapped index.
/// Only far-tail jumps (a few percent — the mapping's jump length is
/// proportional to the current index) fall back to a small overflow heap.
/// This removes the O(log n) sift, and its cache misses, from every one of
/// the O(d log d) symbol touches of an encode or decode pass. The order in
/// which co-mapped symbols are applied within one index differs from the
/// heap's, but application is XOR/add — commutative — so every produced
/// coded symbol is byte-identical.
#[derive(Debug, Clone)]
pub(crate) struct CodingWindow<S: Symbol> {
    symbols: Vec<HashedSymbol<S>>,
    mappings: Vec<IndexMapping>,
    /// `bucket_head[i]` is the first position in the chain of symbols whose
    /// next mapped index is `i` ([`NO_POS`] = empty). Grows lazily, bounded
    /// to a constant factor of the produced prefix (see [`Self::enqueue`]).
    bucket_head: Vec<u32>,
    /// Intrusive chain links, parallel to `symbols`.
    bucket_next: Vec<u32>,
    /// (next mapped index, position) entries beyond the bucketed horizon.
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    /// Index of the next coded symbol this window will contribute to.
    next_index: u64,
    key: SipKey,
    alpha: f64,
}

impl<S: Symbol> CodingWindow<S> {
    pub(crate) fn new(key: SipKey, alpha: f64) -> Self {
        CodingWindow {
            symbols: Vec::new(),
            mappings: Vec::new(),
            bucket_head: Vec::new(),
            bucket_next: Vec::new(),
            overflow: BinaryHeap::new(),
            next_index: 0,
            key,
            alpha,
        }
    }

    pub(crate) fn key(&self) -> SipKey {
        self.key
    }

    pub(crate) fn alpha(&self) -> f64 {
        self.alpha
    }

    pub(crate) fn len(&self) -> usize {
        self.symbols.len()
    }

    pub(crate) fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Parks position `pos` to be applied at coded-symbol `index`: an O(1)
    /// bucket push, or the overflow heap for indices far beyond the prefix
    /// produced so far (keeps the bucket array within a constant factor of
    /// the output length regardless of how far tail jumps land).
    #[inline]
    fn enqueue(&mut self, pos: u32, index: u64) {
        debug_assert!(index >= self.next_index || self.next_index == 0);
        let limit = 4 * (self.next_index + 1) + 1024;
        if index < limit {
            let i = index as usize;
            if i >= self.bucket_head.len() {
                self.bucket_head.resize(i + 1, NO_POS);
            }
            self.bucket_next[pos as usize] = self.bucket_head[i];
            self.bucket_head[i] = pos;
        } else {
            self.overflow.push(Reverse((index, pos)));
        }
    }

    /// Registers a symbol/mapping pair and parks it at its current index.
    fn push_entry(&mut self, symbol: HashedSymbol<S>, mapping: IndexMapping) {
        let pos = self.symbols.len();
        assert!(pos < NO_POS as usize, "coding window position overflow");
        let index = mapping.current_index();
        self.symbols.push(symbol);
        self.mappings.push(mapping);
        self.bucket_next.push(NO_POS);
        self.enqueue(pos as u32, index);
    }

    /// Adds a symbol whose mapping starts at index 0. Only valid before the
    /// window has produced anything (`next_index == 0`); the caller enforces
    /// that and reports [`Error`] variants appropriate for its API.
    pub(crate) fn push_fresh(&mut self, symbol: HashedSymbol<S>) {
        let alpha = self.alpha;
        self.push_fresh_with_alpha(symbol, alpha);
    }

    /// Like [`Self::push_fresh`] but with a per-symbol mapping parameter
    /// (used by the Irregular Rateless IBLT, §8).
    pub(crate) fn push_fresh_with_alpha(&mut self, symbol: HashedSymbol<S>, alpha: f64) {
        debug_assert_eq!(self.next_index, 0);
        let mapping = IndexMapping::with_alpha(symbol.hash, alpha);
        self.push_entry(symbol, mapping);
    }

    /// Adds a symbol together with a mapping that has already been advanced
    /// past the indices this window has produced (used by the decoder when a
    /// symbol is recovered mid-stream).
    pub(crate) fn push_with_mapping(&mut self, symbol: HashedSymbol<S>, mapping: IndexMapping) {
        debug_assert!(mapping.current_index() >= self.next_index);
        self.push_entry(symbol, mapping);
    }

    /// Applies every symbol mapped to the current index into `cs` (in the
    /// given direction) and advances the window to the next index.
    pub(crate) fn apply_next(&mut self, cs: &mut CodedSymbol<S>, direction: Direction) {
        let idx = self.next_index;
        self.next_index = idx + 1;
        if (idx as usize) < self.bucket_head.len() {
            let mut pos = std::mem::replace(&mut self.bucket_head[idx as usize], NO_POS);
            while pos != NO_POS {
                let p = pos as usize;
                // Chain entries are scattered; start the next entry's
                // fetches before working on this one.
                pos = self.bucket_next[p];
                if pos != NO_POS {
                    prefetch(&self.symbols[pos as usize]);
                    prefetch(&self.mappings[pos as usize]);
                }
                cs.apply(&self.symbols[p], direction);
                let advanced = self.mappings[p].advance();
                self.enqueue(p as u32, advanced);
            }
        }
        while let Some(&Reverse((next, pos))) = self.overflow.peek() {
            if next != idx {
                debug_assert!(next > idx, "window fell behind its overflow heap");
                break;
            }
            self.overflow.pop();
            let p = pos as usize;
            cs.apply(&self.symbols[p], direction);
            let advanced = self.mappings[p].advance();
            self.enqueue(pos, advanced);
        }
    }

    /// Restarts emission from index 0, keeping the symbol set and each
    /// symbol's (possibly per-class) mapping parameter.
    pub(crate) fn restart(&mut self) {
        self.bucket_head.clear();
        self.overflow.clear();
        self.next_index = 0;
        // Every fresh mapping starts at index 0: chain them all into one
        // bucket directly.
        self.bucket_head.push(NO_POS);
        for (pos, sym) in self.symbols.iter().enumerate() {
            let alpha = self.mappings[pos].alpha();
            self.mappings[pos] = IndexMapping::with_alpha(sym.hash, alpha);
            self.bucket_next[pos] = self.bucket_head[0];
            self.bucket_head[0] = pos as u32;
        }
    }

    /// Iterates over the stored symbols (used to report recovered sets).
    pub(crate) fn symbols(&self) -> &[HashedSymbol<S>] {
        &self.symbols
    }
}

/// Streaming encoder for a set: produces the infinite coded-symbol sequence
/// one symbol at a time.
///
/// ```
/// use riblt::{Encoder, FixedBytes};
///
/// let mut enc = Encoder::<FixedBytes<8>>::new();
/// for i in 0..100u64 {
///     enc.add_symbol(FixedBytes::from_u64(i)).unwrap();
/// }
/// let first = enc.produce_next_coded_symbol();
/// // Every source symbol is mapped to coded symbol 0 (ρ(0) = 1).
/// assert_eq!(first.count, 100);
/// ```
#[derive(Debug, Clone)]
pub struct Encoder<S: Symbol> {
    window: CodingWindow<S>,
}

impl<S: Symbol> Default for Encoder<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Symbol> Encoder<S> {
    /// Creates an encoder with the default (non-secret) checksum key and the
    /// paper's α = 0.5 mapping.
    pub fn new() -> Self {
        Self::with_key(SipKey::default())
    }

    /// Creates an encoder using a secret checksum key (paper §4.3); both
    /// parties must use the same key.
    pub fn with_key(key: SipKey) -> Self {
        Self::with_key_and_alpha(key, DEFAULT_ALPHA)
    }

    /// Creates an encoder with an explicit mapping parameter α. Used by the
    /// α-sweep experiments; applications should use the default.
    pub fn with_key_and_alpha(key: SipKey, alpha: f64) -> Self {
        Encoder {
            window: CodingWindow::new(key, alpha),
        }
    }

    /// Number of source symbols added so far.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True if no source symbols have been added.
    pub fn is_empty(&self) -> bool {
        self.window.len() == 0
    }

    /// Index of the next coded symbol that [`Self::produce_next_coded_symbol`]
    /// will produce.
    pub fn next_index(&self) -> u64 {
        self.window.next_index()
    }

    /// The checksum key in use.
    pub fn key(&self) -> SipKey {
        self.window.key()
    }

    /// The mapping parameter α this encoder was built with. Session layers
    /// use it to configure a matching [`crate::SymbolCodec`], so the wire
    /// format's expected-count compression stays aligned with the actual
    /// coded-symbol density.
    pub fn alpha(&self) -> f64 {
        self.window.alpha()
    }

    /// Adds a source symbol to the set being encoded.
    ///
    /// Returns [`Error::SymbolAddedAfterEncodingStarted`] if coded symbols
    /// have already been produced: those prefixes would not include the new
    /// symbol. Use [`crate::SketchCache`] for incrementally-updated sets, or
    /// [`Self::restart`] to re-emit from index 0.
    pub fn add_symbol(&mut self, symbol: S) -> Result<()> {
        let hashed = HashedSymbol::new(symbol, self.window.key());
        self.add_hashed_symbol(hashed)
    }

    /// Adds a symbol whose keyed hash the caller has already computed.
    pub fn add_hashed_symbol(&mut self, symbol: HashedSymbol<S>) -> Result<()> {
        if self.window.next_index() != 0 {
            return Err(Error::SymbolAddedAfterEncodingStarted);
        }
        self.window.push_fresh(symbol);
        Ok(())
    }

    /// Produces the next coded symbol in the infinite sequence.
    pub fn produce_next_coded_symbol(&mut self) -> CodedSymbol<S> {
        let mut cs = CodedSymbol::new();
        self.window.apply_next(&mut cs, Direction::Add);
        cs
    }

    /// Produces the next `n` coded symbols.
    pub fn produce_coded_symbols(&mut self, n: usize) -> Vec<CodedSymbol<S>> {
        (0..n).map(|_| self.produce_next_coded_symbol()).collect()
    }

    /// Restarts emission from coded symbol 0 while keeping the symbol set,
    /// e.g. to re-stream to a new peer from the beginning.
    pub fn restart(&mut self) {
        self.window.restart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::FixedBytes;

    type Sym = FixedBytes<8>;

    fn encoder_with(symbols: impl IntoIterator<Item = u64>) -> Encoder<Sym> {
        let mut enc = Encoder::new();
        for s in symbols {
            enc.add_symbol(Sym::from_u64(s)).unwrap();
        }
        enc
    }

    #[test]
    fn first_coded_symbol_contains_every_source_symbol() {
        let mut enc = encoder_with(1..=50);
        let c0 = enc.produce_next_coded_symbol();
        assert_eq!(c0.count, 50);
        // XOR of all inputs.
        let mut expect = Sym::ZERO;
        for i in 1..=50u64 {
            expect.xor_in_place(&Sym::from_u64(i));
        }
        assert_eq!(c0.sum, expect);
    }

    #[test]
    fn coded_symbol_sequence_is_deterministic() {
        let mut a = encoder_with(0..200);
        let mut b = encoder_with(0..200);
        for _ in 0..500 {
            assert_eq!(a.produce_next_coded_symbol(), b.produce_next_coded_symbol());
        }
    }

    #[test]
    fn add_after_produce_is_rejected() {
        let mut enc = encoder_with(0..10);
        let _ = enc.produce_next_coded_symbol();
        assert_eq!(
            enc.add_symbol(Sym::from_u64(99)),
            Err(Error::SymbolAddedAfterEncodingStarted)
        );
    }

    #[test]
    fn restart_reproduces_the_same_prefix() {
        let mut enc = encoder_with(0..100);
        let first: Vec<_> = enc.produce_coded_symbols(64);
        enc.restart();
        let second: Vec<_> = enc.produce_coded_symbols(64);
        assert_eq!(first, second);
    }

    #[test]
    fn linearity_of_streams() {
        // Subtracting the coded streams of A and B gives the stream of A △ B.
        let a: Vec<u64> = (0..300).collect();
        let b: Vec<u64> = (100..400).collect(); // A △ B = 0..100 ∪ 300..400
        let mut enc_a = encoder_with(a.iter().copied());
        let mut enc_b = encoder_with(b.iter().copied());
        let mut enc_d = encoder_with((0..100).chain(300..400));

        for _ in 0..256 {
            let mut ca = enc_a.produce_next_coded_symbol();
            let cb = enc_b.produce_next_coded_symbol();
            let cd = enc_d.produce_next_coded_symbol();
            ca.subtract(&cb);
            // Counts differ in sign semantics: the difference stream encodes
            // A-only items with +1 and B-only with −1, while enc_d encodes
            // them all with +1. Sum and checksum must match exactly for the
            // symmetric-difference check, so compare against a reconstruction.
            assert_eq!(ca.sum, cd.sum);
            assert_eq!(ca.checksum, cd.checksum);
        }
    }

    #[test]
    fn sparse_mapping_keeps_later_symbols_small() {
        // Later coded symbols should contain far fewer source symbols than
        // the first one (ρ decreases like 1/i).
        let mut enc = encoder_with(0..10_000);
        let symbols = enc.produce_coded_symbols(2_000);
        assert_eq!(symbols[0].count, 10_000);
        let tail_avg: f64 = symbols[1_000..].iter().map(|c| c.count as f64).sum::<f64>() / 1_000.0;
        // ρ(1500) ≈ 1/751 ⇒ about 13 of 10k symbols per cell.
        assert!(tail_avg < 40.0, "tail average count too high: {tail_avg}");
        assert!(
            tail_avg > 2.0,
            "tail average count suspiciously low: {tail_avg}"
        );
    }

    #[test]
    fn empty_encoder_produces_empty_cells() {
        let mut enc = Encoder::<Sym>::new();
        for _ in 0..10 {
            assert!(enc.produce_next_coded_symbol().is_empty_cell());
        }
    }
}
