//! Workspace umbrella crate.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) of the Rateless IBLT workspace;
//! it simply re-exports the member crates. Depend on the individual crates
//! (`riblt`, `iblt`, `pinsketch`, …) in real applications.

pub use analysis;
pub use cluster;
pub use iblt;
pub use merkle_trie;
pub use met_iblt;
pub use netsim;
pub use pinsketch;
pub use reconcile_core;
pub use riblt;
pub use riblt_hash;
pub use server;
pub use statesync;
