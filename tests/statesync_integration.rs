//! Integration test of the §7.3 application path: synthetic chain, both
//! synchronization protocols, convergence, and the qualitative comparison
//! the paper reports.

use rateless_reconciliation::netsim::LinkConfig;
use rateless_reconciliation::statesync::{
    sync_with_heal, sync_with_riblt, Chain, ChainConfig, HealSyncConfig, RibltSyncConfig,
};

fn chain() -> Chain {
    Chain::generate(ChainConfig::test_scale(), 30)
}

#[test]
fn both_protocols_converge_to_the_same_state() {
    let chain = chain();
    let latest = chain.snapshot_at(30);
    let stale = chain.snapshot_at(12);
    let target_root = latest.to_trie().root();

    let (riblt_ledger, riblt_outcome) =
        sync_with_riblt(&latest, &stale, RibltSyncConfig::default());
    assert_eq!(riblt_ledger.to_trie().root(), target_root);

    let (healed_trie, heal_outcome) = sync_with_heal(&latest, &stale, HealSyncConfig::default());
    assert_eq!(healed_trie.root(), target_root);

    // The qualitative claims of §7.3: fewer bytes, fewer rounds, less time.
    assert!(riblt_outcome.total_bytes() < heal_outcome.total_bytes());
    assert!(riblt_outcome.rounds < heal_outcome.rounds);
    assert!(riblt_outcome.completion_time_s < heal_outcome.completion_time_s);
}

#[test]
fn completion_time_grows_with_staleness_for_both_protocols() {
    let chain = chain();
    let latest = chain.snapshot_at(30);
    let cfg_link = LinkConfig::with_mbps(20.0);
    let riblt_cfg = RibltSyncConfig {
        link: cfg_link,
        ..Default::default()
    };
    let heal_cfg = HealSyncConfig {
        link: cfg_link,
        ..Default::default()
    };
    let (_, riblt_fresh) = sync_with_riblt(&latest, &chain.snapshot_at(28), riblt_cfg);
    let (_, riblt_stale) = sync_with_riblt(&latest, &chain.snapshot_at(2), riblt_cfg);
    assert!(riblt_stale.total_bytes() > riblt_fresh.total_bytes());

    let (_, heal_fresh) = sync_with_heal(&latest, &chain.snapshot_at(28), heal_cfg);
    let (_, heal_stale) = sync_with_heal(&latest, &chain.snapshot_at(2), heal_cfg);
    assert!(heal_stale.total_bytes() > heal_fresh.total_bytes());
}

#[test]
fn bandwidth_trace_accounts_for_all_downstream_bytes() {
    let chain = chain();
    let latest = chain.snapshot_at(30);
    let stale = chain.snapshot_at(20);
    let (_, outcome) = sync_with_riblt(&latest, &stale, RibltSyncConfig::default());
    assert_eq!(
        outcome.downstream_series.total_bytes(),
        outcome.bytes_downstream
    );
    let trace = outcome.downstream_series.bandwidth_mbps(0.1);
    assert!(!trace.is_empty());
    // No bin can exceed the 20 Mbps link rate by more than rounding slack.
    for (_, mbps) in trace {
        assert!(mbps <= 20.5, "bin exceeds the link rate: {mbps}");
    }
}
