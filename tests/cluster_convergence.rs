//! Integration test of the acceptance scenario: an 8-node × 16-shard
//! cluster with churn injected mid-gossip converges to identical sets over
//! the netsim topology.

use rateless_reconciliation::cluster::{
    reconcile_pair, Cluster, ClusterConfig, Node, NodeConfig, PairSyncConfig,
};
use rateless_reconciliation::netsim::{LinkConfig, Topology};
use rateless_reconciliation::riblt::FixedBytes;
use rateless_reconciliation::riblt_hash::SplitMix64;

type Item = FixedBytes<32>;

fn fresh_item(rng: &mut SplitMix64) -> Item {
    let mut bytes = [0u8; 32];
    rng.fill_bytes(&mut bytes);
    FixedBytes(bytes)
}

#[test]
fn eight_nodes_sixteen_shards_with_churn_converge() {
    const NODES: usize = 8;
    const SHARDS: u16 = 16;
    let mut cluster = Cluster::<Item>::new(ClusterConfig {
        nodes: NODES,
        node: NodeConfig::new(SHARDS, 32),
        link: LinkConfig::paper_default(),
        pair: PairSyncConfig {
            batch_symbols: 16,
            ..Default::default()
        },
        seed: 0xacce97,
    });
    let mut rng = SplitMix64::new(0x8c1);

    // Shared history on every node, then node-local writes.
    for _ in 0..800 {
        let item = fresh_item(&mut rng);
        for node in 0..NODES {
            cluster.insert_at(node, item);
        }
    }
    for node in 0..NODES {
        for _ in 0..40 {
            let item = fresh_item(&mut rng);
            cluster.insert_at(node, item);
        }
    }
    assert!(!cluster.converged());

    // Churn: writes keep landing at random nodes while gossip runs.
    let mut churn_writes = 0usize;
    for _ in 0..3 {
        for _ in 0..50 {
            let node = rng.next_below(NODES as u64) as usize;
            if cluster.insert_at(node, fresh_item(&mut rng)) {
                churn_writes += 1;
            }
        }
        cluster.run_round().expect("gossip round under churn");
    }
    assert_eq!(churn_writes, 150);

    // Once writes stop, the cluster must reach identical sets.
    let report = cluster.run_until_converged(40).expect("convergence run");
    assert!(
        report.converged,
        "8x16 cluster failed to converge within 40 post-churn rounds"
    );
    let expected = 800 + NODES * 40 + churn_writes;
    for node in 0..NODES {
        assert_eq!(cluster.node(node).len(), expected, "node {node} diverged");
    }
    // Exact set equality (convergence), not just sizes: pairwise exchanges
    // against node 0 must all be no-ops now.
    assert!(cluster.converged());

    // Every node participated and spent decode CPU.
    assert!(report.total_bytes > 0);
    for stats in &report.node_stats {
        assert!(stats.bytes_sent > 0);
        assert!(stats.bytes_received > 0);
    }
    assert!(report.virtual_time_s > 0.0);
}

#[test]
fn one_responder_serves_many_peers_from_one_cache() {
    // The universality claim at the integration level: a hub node serves
    // five peers of very different staleness; every peer session reads the
    // same cached coded symbols (the hub's caches are only ever patched by
    // writes, never rebuilt) and all peers converge on the hub's set.
    const SHARDS: u16 = 8;
    let mut rng = SplitMix64::new(0x45e1);
    let universe: Vec<Item> = (0..2_000).map(|_| fresh_item(&mut rng)).collect();

    let mut nodes: Vec<Node<Item>> = (0..6)
        .map(|id| Node::new(id, NodeConfig::new(SHARDS, 32)))
        .collect();
    for item in &universe {
        nodes[0].insert(*item);
    }
    for (peer, staleness) in [(1usize, 10usize), (2, 50), (3, 200), (4, 800), (5, 1_999)] {
        for item in &universe[staleness..] {
            nodes[peer].insert(*item);
        }
    }

    let mut topo = Topology::full_mesh(6, LinkConfig::paper_default());
    let config = PairSyncConfig::default();
    for (session, peer) in [(1u32, 1usize), (2, 2), (3, 3), (4, 4), (5, 5)] {
        let outcome = reconcile_pair(&mut nodes, peer, 0, &mut topo, &config, session, 0.0)
            .expect("peer sync");
        assert_eq!(outcome.items_to_responder, 0, "hub already had everything");
    }
    for peer in 1..6 {
        assert_eq!(nodes[peer].len(), universe.len(), "peer {peer} incomplete");
        assert_eq!(nodes[peer].digest(), nodes[0].digest());
    }
}
