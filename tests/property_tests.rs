//! Property-based tests (proptest) of the workspace's core invariants.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rateless_reconciliation::merkle_trie::MerkleTrie;
use rateless_reconciliation::pinsketch::PinSketch;
use rateless_reconciliation::riblt::{
    decode_coded_symbols, encode_coded_symbols, Decoder, Encoder, FixedBytes, Sketch,
};

type Item = FixedBytes<8>;

fn to_items(values: &BTreeSet<u64>) -> Vec<Item> {
    values.iter().map(|&v| Item::from_u64(v)).collect()
}

fn symmetric_difference(a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> BTreeSet<u64> {
    a.symmetric_difference(b).copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming protocol recovers exactly the symmetric difference for
    /// arbitrary sets (and always terminates within a generous budget).
    #[test]
    fn streaming_recovers_exact_symmetric_difference(
        a in prop::collection::btree_set(1u64..1_000_000, 0..300),
        b in prop::collection::btree_set(1u64..1_000_000, 0..300),
    ) {
        let expected = symmetric_difference(&a, &b);
        let mut enc = Encoder::<Item>::new();
        for x in to_items(&a) {
            enc.add_symbol(x).unwrap();
        }
        let mut dec = Decoder::<Item>::new();
        for x in to_items(&b) {
            dec.add_symbol(x).unwrap();
        }
        let mut used = 0usize;
        while !dec.is_decoded() {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
            used += 1;
            prop_assert!(used < 40 * expected.len().max(4), "failed to converge");
        }
        let diff = dec.into_difference();
        let got: BTreeSet<u64> = diff
            .remote_only
            .iter()
            .chain(diff.local_only.iter())
            .map(|s| s.to_u64())
            .collect();
        prop_assert_eq!(got, expected);
        // Side attribution must also be exact.
        let remote: BTreeSet<u64> = diff.remote_only.iter().map(|s| s.to_u64()).collect();
        let expected_remote: BTreeSet<u64> = a.difference(&b).copied().collect();
        prop_assert_eq!(remote, expected_remote);
    }

    /// Sketch subtraction is linear: sketch(A) ⊖ sketch(B) decodes A △ B, no
    /// matter how the sets overlap, whenever the sketch is large enough.
    #[test]
    fn sketch_linearity(
        a in prop::collection::btree_set(1u64..100_000, 0..120),
        b in prop::collection::btree_set(1u64..100_000, 0..120),
    ) {
        let expected = symmetric_difference(&a, &b);
        let m = 4 * expected.len().max(8);
        let sa = Sketch::from_set(m, to_items(&a).iter());
        let sb = Sketch::from_set(m, to_items(&b).iter());
        let decoded = sa.subtracted(&sb).unwrap().decode();
        // With 4x overhead failure is negligible; treat it as a bug.
        let diff = decoded.expect("sketch with 4x overhead must decode");
        let got: BTreeSet<u64> = diff
            .remote_only
            .iter()
            .chain(diff.local_only.iter())
            .map(|s| s.to_u64())
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Wire-format round trip is lossless for arbitrary coded-symbol
    /// prefixes.
    #[test]
    fn wire_roundtrip(
        values in prop::collection::btree_set(1u64..u64::MAX, 0..200),
        prefix in 1usize..256,
    ) {
        let mut enc = Encoder::<Item>::new();
        for x in to_items(&values) {
            enc.add_symbol(x).unwrap();
        }
        let symbols = enc.produce_coded_symbols(prefix);
        let bytes = encode_coded_symbols(&symbols, 8, values.len() as u64);
        let back = decode_coded_symbols::<Item>(&bytes, 8).unwrap();
        prop_assert_eq!(back, symbols);
    }

    /// PinSketch with capacity ≥ d recovers the exact difference of two
    /// non-zero element sets.
    #[test]
    fn pinsketch_exact_recovery(
        a in prop::collection::btree_set(1u64..u64::MAX, 0..40),
        b in prop::collection::btree_set(1u64..u64::MAX, 0..40),
    ) {
        let expected = symmetric_difference(&a, &b);
        let capacity = expected.len().max(1);
        let pa = PinSketch::from_set(capacity, a.iter().copied()).unwrap();
        let pb = PinSketch::from_set(capacity, b.iter().copied()).unwrap();
        let got: BTreeSet<u64> = pa
            .merged(&pb)
            .unwrap()
            .decode()
            .expect("capacity >= difference must decode")
            .into_iter()
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// The Merkle trie behaves like a map, and its root hash is a pure
    /// function of the final contents (insertion-order independent).
    #[test]
    fn trie_behaves_like_a_map(
        entries in prop::collection::btree_map(
            prop::collection::vec(any::<u8>(), 20),
            prop::collection::vec(any::<u8>(), 1..72),
            0..120,
        ),
    ) {
        let mut forward = MerkleTrie::new();
        for (k, v) in &entries {
            forward.insert(k, v.clone());
        }
        let mut backward = MerkleTrie::new();
        for (k, v) in entries.iter().rev() {
            backward.insert(k, v.clone());
        }
        prop_assert_eq!(forward.root(), backward.root());
        prop_assert_eq!(forward.len(), entries.len());
        for (k, v) in &entries {
            prop_assert_eq!(forward.get(k), Some(v.as_slice()));
        }
        let mut leaves = forward.leaves();
        leaves.sort();
        let mut expected: Vec<(Vec<u8>, Vec<u8>)> =
            entries.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        expected.sort();
        prop_assert_eq!(leaves, expected);
    }
}
