//! Property-based tests of the workspace's core invariants.
//!
//! The build environment has no third-party property-testing crate, so the
//! harness is hand-rolled: each property runs over a few dozen cases drawn
//! from a deterministic `SplitMix64` stream (reproducible by construction —
//! a failing case prints its seed).

use std::collections::{BTreeMap, BTreeSet};

use rateless_reconciliation::merkle_trie::MerkleTrie;
use rateless_reconciliation::pinsketch::PinSketch;
use rateless_reconciliation::riblt::wire::SymbolCodec;
use rateless_reconciliation::riblt::{
    decode_coded_symbols, encode_coded_symbols, CodedSymbol, Decoder, Encoder, Error, FixedBytes,
    Sketch, SketchCache,
};
use rateless_reconciliation::riblt_hash::SplitMix64;

type Item = FixedBytes<8>;

/// Draws a random set of `0..max_len` values in `1..bound`.
fn random_set(gen: &mut SplitMix64, bound: u64, max_len: usize) -> BTreeSet<u64> {
    let len = (gen.next_u64() as usize) % max_len;
    let mut out = BTreeSet::new();
    while out.len() < len {
        let v = 1 + gen.next_u64() % (bound - 1);
        out.insert(v);
    }
    out
}

fn to_items(values: &BTreeSet<u64>) -> Vec<Item> {
    values.iter().map(|&v| Item::from_u64(v)).collect()
}

fn symmetric_difference(a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> BTreeSet<u64> {
    a.symmetric_difference(b).copied().collect()
}

/// The streaming protocol recovers exactly the symmetric difference for
/// arbitrary sets (and always terminates within a generous budget).
#[test]
fn streaming_recovers_exact_symmetric_difference() {
    for case in 0..24u64 {
        let mut gen = SplitMix64::new(0x51ea4 + case);
        let a = random_set(&mut gen, 1_000_000, 300);
        let b = random_set(&mut gen, 1_000_000, 300);
        let expected = symmetric_difference(&a, &b);
        let mut enc = Encoder::<Item>::new();
        for x in to_items(&a) {
            enc.add_symbol(x).unwrap();
        }
        let mut dec = Decoder::<Item>::new();
        for x in to_items(&b) {
            dec.add_symbol(x).unwrap();
        }
        let mut used = 0usize;
        while !dec.is_decoded() {
            dec.add_coded_symbol(enc.produce_next_coded_symbol());
            used += 1;
            assert!(
                used < 40 * expected.len().max(4),
                "case {case}: failed to converge"
            );
        }
        let diff = dec.into_difference();
        let got: BTreeSet<u64> = diff
            .remote_only
            .iter()
            .chain(diff.local_only.iter())
            .map(|s| s.to_u64())
            .collect();
        assert_eq!(got, expected, "case {case}");
        // Side attribution must also be exact.
        let remote: BTreeSet<u64> = diff.remote_only.iter().map(|s| s.to_u64()).collect();
        let expected_remote: BTreeSet<u64> = a.difference(&b).copied().collect();
        assert_eq!(remote, expected_remote, "case {case}");
    }
}

/// Sketch subtraction is linear: sketch(A) ⊖ sketch(B) decodes A △ B, no
/// matter how the sets overlap, whenever the sketch is large enough.
#[test]
fn sketch_linearity() {
    for case in 0..24u64 {
        let mut gen = SplitMix64::new(0x5ce7c + case);
        let a = random_set(&mut gen, 100_000, 120);
        let b = random_set(&mut gen, 100_000, 120);
        let expected = symmetric_difference(&a, &b);
        let m = 4 * expected.len().max(8);
        let sa = Sketch::from_set(m, to_items(&a).iter());
        let sb = Sketch::from_set(m, to_items(&b).iter());
        // With 4x overhead failure is negligible; treat it as a bug.
        let diff = sa
            .subtracted(&sb)
            .unwrap()
            .decode()
            .expect("sketch with 4x overhead must decode");
        let got: BTreeSet<u64> = diff
            .remote_only
            .iter()
            .chain(diff.local_only.iter())
            .map(|s| s.to_u64())
            .collect();
        assert_eq!(got, expected, "case {case}");
    }
}

/// After an arbitrary interleaving of adds, removes (of present items) and
/// prefix extensions, an incrementally-patched [`SketchCache`] holds coded
/// symbols **byte-identical** to a from-scratch rebuild of the surviving
/// set — the universality property the cluster's shared-cache serving
/// relies on (one encode, every peer, any staleness).
#[test]
fn sketch_cache_incremental_patching_matches_rebuild_after_churn() {
    for case in 0..24u64 {
        let mut gen = SplitMix64::new(0xcac4e + case);
        let mut cache = SketchCache::<Item>::new();
        let mut live: BTreeSet<u64> = BTreeSet::new();
        // Start from a materialized prefix so every update really patches.
        let mut materialized = 8 + (gen.next_u64() as usize) % 120;
        cache.ensure_len(materialized);

        let ops = 200 + (gen.next_u64() as usize) % 300;
        for _ in 0..ops {
            match gen.next_u64() % 10 {
                // 60%: add a fresh item.
                0..=5 => {
                    let v = 1 + gen.next_u64() % 1_000_000;
                    if live.insert(v) {
                        cache.add_symbol(Item::from_u64(v));
                    }
                }
                // 30%: remove a random present item.
                6..=8 => {
                    if let Some(&v) = live
                        .iter()
                        .nth((gen.next_u64() as usize) % live.len().max(1))
                    {
                        live.remove(&v);
                        cache.remove_symbol(Item::from_u64(v));
                    }
                }
                // 10%: extend the materialized prefix mid-churn.
                _ => {
                    let extra = 1 + (gen.next_u64() as usize) % 40;
                    materialized += extra;
                    cache.ensure_len(materialized);
                }
            }
        }

        let mut rebuilt = Sketch::<Item>::new(materialized);
        for &v in &live {
            rebuilt.add_symbol(&Item::from_u64(v));
        }
        let cached = cache.to_sketch(materialized);
        assert_eq!(cached, rebuilt, "case {case}: cells diverged");
        // Byte-identical on the wire, not merely structurally equal.
        let codec = SymbolCodec::new(8, live.len() as u64);
        assert_eq!(
            codec.encode_batch(cached.cells(), 0),
            codec.encode_batch(rebuilt.cells(), 0),
            "case {case}: wire bytes diverged"
        );
    }
}

/// Wire-format round trip is lossless for arbitrary coded-symbol prefixes.
#[test]
fn wire_roundtrip() {
    for case in 0..24u64 {
        let mut gen = SplitMix64::new(0x31e + case);
        let values = random_set(&mut gen, u64::MAX, 200);
        let prefix = 1 + (gen.next_u64() as usize) % 255;
        let mut enc = Encoder::<Item>::new();
        for x in to_items(&values) {
            enc.add_symbol(x).unwrap();
        }
        let symbols = enc.produce_coded_symbols(prefix);
        let bytes = encode_coded_symbols(&symbols, 8, values.len() as u64);
        let back = decode_coded_symbols::<Item>(&bytes, 8).unwrap();
        assert_eq!(back, symbols, "case {case}");
    }
}

/// Round trip through [`SymbolCodec`] is lossless for *synthetic* coded
/// symbols with arbitrary counts, checksums and sums — not just prefixes an
/// encoder would produce — at arbitrary start indices and set sizes.
#[test]
fn wire_roundtrip_arbitrary_counts_and_sums() {
    for case in 0..40u64 {
        let mut gen = SplitMix64::new(0xc0de + case);
        let set_size = gen.next_u64() % 2_000_000;
        let start_index = gen.next_u64() % 100_000;
        let batch_len = (gen.next_u64() as usize) % 64;
        let symbols: Vec<CodedSymbol<Item>> = (0..batch_len)
            .map(|_| {
                let mut sum = [0u8; 8];
                gen.fill_bytes(&mut sum);
                CodedSymbol {
                    sum: FixedBytes(sum),
                    checksum: gen.next_u64(),
                    // Counts far away from the expected model must still
                    // round-trip (they only cost longer VLQs).
                    count: (gen.next_u64() as i64) % 1_000_000,
                }
            })
            .collect();
        let codec = SymbolCodec::new(8, set_size);
        let bytes = codec.encode_batch(&symbols, start_index);
        let decoded = codec.decode_batch::<Item>(&bytes).unwrap();
        assert_eq!(decoded.symbols, symbols, "case {case}");
        assert_eq!(decoded.start_index, start_index, "case {case}");
        assert_eq!(decoded.set_size, set_size, "case {case}");
    }
}

/// Truncating or corrupting a wire batch must yield `Error::WireFormat` (or
/// decode to different symbols) — never a panic.
#[test]
fn wire_truncation_and_corruption_never_panic() {
    let mut gen = SplitMix64::new(0xbad5eed);
    let values = random_set(&mut gen, u64::MAX, 150);
    let mut enc = Encoder::<Item>::new();
    for x in to_items(&values) {
        enc.add_symbol(x).unwrap();
    }
    let symbols = enc.produce_coded_symbols(64);
    let codec = SymbolCodec::new(8, values.len() as u64);
    let bytes = codec.encode_batch(&symbols, 0);

    // Every possible truncation point.
    for cut in 0..bytes.len() {
        match codec.decode_batch::<Item>(&bytes[..cut]) {
            Err(Error::WireFormat(_)) => {}
            Err(other) => panic!("truncation at {cut} produced non-wire error {other:?}"),
            // A cut can still parse when the (truncated) VLQ batch length
            // happens to cover fewer symbols than were encoded; that is a
            // shorter, well-formed batch, not a safety violation.
            Ok(decoded) => assert!(decoded.symbols.len() <= symbols.len()),
        }
    }

    // Random single-byte corruptions: must never panic; when decoding
    // "succeeds" the bytes were still structurally valid.
    for _ in 0..500 {
        let mut corrupted = bytes.clone();
        let pos = (gen.next_u64() as usize) % corrupted.len();
        let flip = (gen.next_u64() % 255) as u8 + 1;
        corrupted[pos] ^= flip;
        match codec.decode_batch::<Item>(&corrupted) {
            Ok(_) => {}
            Err(Error::WireFormat(_)) => {}
            Err(other) => panic!("corruption at {pos} produced non-wire error {other:?}"),
        }
    }

    // Garbage prefixes of every length.
    for len in 0..64 {
        let mut garbage = vec![0u8; len];
        gen.fill_bytes(&mut garbage);
        let _ = codec.decode_batch::<Item>(&garbage);
    }
}

/// PinSketch with capacity ≥ d recovers the exact difference of two
/// non-zero element sets.
#[test]
fn pinsketch_exact_recovery() {
    for case in 0..24u64 {
        let mut gen = SplitMix64::new(0x9145 + case);
        let a = random_set(&mut gen, u64::MAX, 40);
        let b = random_set(&mut gen, u64::MAX, 40);
        let expected = symmetric_difference(&a, &b);
        let capacity = expected.len().max(1);
        let pa = PinSketch::from_set(capacity, a.iter().copied()).unwrap();
        let pb = PinSketch::from_set(capacity, b.iter().copied()).unwrap();
        let got: BTreeSet<u64> = pa
            .merged(&pb)
            .unwrap()
            .decode()
            .expect("capacity >= difference must decode")
            .into_iter()
            .collect();
        assert_eq!(got, expected, "case {case}");
    }
}

/// The Merkle trie behaves like a map, and its root hash is a pure function
/// of the final contents (insertion-order independent).
#[test]
fn trie_behaves_like_a_map() {
    for case in 0..16u64 {
        let mut gen = SplitMix64::new(0x7e1e + case);
        let len = (gen.next_u64() as usize) % 120;
        let mut entries: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        while entries.len() < len {
            let mut key = vec![0u8; 20];
            gen.fill_bytes(&mut key);
            let value_len = 1 + (gen.next_u64() as usize) % 71;
            let mut value = vec![0u8; value_len];
            gen.fill_bytes(&mut value);
            entries.insert(key, value);
        }
        let mut forward = MerkleTrie::new();
        for (k, v) in &entries {
            forward.insert(k, v.clone());
        }
        let mut backward = MerkleTrie::new();
        for (k, v) in entries.iter().rev() {
            backward.insert(k, v.clone());
        }
        assert_eq!(forward.root(), backward.root(), "case {case}");
        assert_eq!(forward.len(), entries.len(), "case {case}");
        for (k, v) in &entries {
            assert_eq!(forward.get(k), Some(v.as_slice()), "case {case}");
        }
        let mut leaves = forward.leaves();
        leaves.sort();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        assert_eq!(leaves, expected, "case {case}");
    }
}
