//! Cross-crate integration tests: every reconciliation scheme in the
//! workspace must agree on the symmetric difference of the same two sets,
//! and the full wire/session stack must round-trip.

use std::collections::BTreeSet;

use rateless_reconciliation::iblt::Iblt;
use rateless_reconciliation::met_iblt::MetIblt;
use rateless_reconciliation::pinsketch::PinSketch;
use rateless_reconciliation::reconcile_core::backends::RibltBackend;
use rateless_reconciliation::reconcile_core::run_in_memory;
use rateless_reconciliation::riblt::{Decoder, Encoder, FixedBytes, SipKey, Sketch};
use rateless_reconciliation::riblt_hash::splitmix64;

type Item = FixedBytes<8>;

/// Builds two n-item sets whose symmetric difference has exactly `2*d`
/// elements (`d` exclusive to each side); returns the expected difference.
fn sets(n: u64, d: u64, seed: u64) -> (Vec<Item>, Vec<Item>, BTreeSet<u64>) {
    let universe: Vec<u64> = (0..n + d).map(|i| splitmix64(seed ^ i) | 1).collect();
    let alice: Vec<Item> = universe[..n as usize]
        .iter()
        .map(|&v| Item::from_u64(v))
        .collect();
    let bob: Vec<Item> = universe[d as usize..]
        .iter()
        .map(|&v| Item::from_u64(v))
        .collect();
    let expected: BTreeSet<u64> = universe[..d as usize]
        .iter()
        .chain(universe[n as usize..].iter())
        .copied()
        .collect();
    (alice, bob, expected)
}

fn as_set(diff: &rateless_reconciliation::riblt::SetDifference<Item>) -> BTreeSet<u64> {
    diff.remote_only
        .iter()
        .chain(diff.local_only.iter())
        .map(|s| s.to_u64())
        .collect()
}

#[test]
fn all_schemes_agree_on_the_difference() {
    let (alice, bob, expected) = sets(5_000, 60, 0xa11);

    // Rateless IBLT (streaming).
    let mut enc = Encoder::<Item>::new();
    for x in &alice {
        enc.add_symbol(*x).unwrap();
    }
    let mut dec = Decoder::<Item>::new();
    for x in &bob {
        dec.add_symbol(*x).unwrap();
    }
    while !dec.is_decoded() {
        dec.add_coded_symbol(enc.produce_next_coded_symbol());
    }
    assert_eq!(as_set(&dec.into_difference()), expected);

    // Rateless IBLT (sketch).
    let sa = Sketch::from_set(256, alice.iter());
    let sb = Sketch::from_set(256, bob.iter());
    assert_eq!(
        as_set(&sa.subtracted(&sb).unwrap().decode().unwrap()),
        expected
    );

    // Regular IBLT.
    let ta = Iblt::from_set(240, 4, alice.iter());
    let tb = Iblt::from_set(240, 4, bob.iter());
    let out = ta.subtracted(&tb).decode();
    assert!(out.is_complete());
    assert_eq!(as_set(&out.difference()), expected);

    // MET-IBLT.
    let ma = MetIblt::from_set(alice.iter());
    let mb = MetIblt::from_set(bob.iter());
    let out = ma.subtracted(&mb).decode_minimal();
    assert!(out.complete);
    assert_eq!(as_set(&out.difference), expected);

    // PinSketch.
    let pa = PinSketch::from_set(160, alice.iter().map(|i| i.to_u64())).unwrap();
    let pb = PinSketch::from_set(160, bob.iter().map(|i| i.to_u64())).unwrap();
    let got: BTreeSet<u64> = pa
        .merged(&pb)
        .unwrap()
        .decode()
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn session_over_wire_format_reconciles_large_difference() {
    let (alice, bob, expected) = sets(20_000, 1_500, 0x5e5);
    let backend = RibltBackend::<Item>::new(8, 64);
    let report = run_in_memory(backend, &alice, &bob, 1_000_000).unwrap();
    assert_eq!(as_set(&report.difference), expected);
    // The symmetric difference has 2 * 1,500 = 3,000 items.
    let overhead = report.units as f64 / 3_000.0;
    assert!(
        overhead < 2.0,
        "overhead {overhead:.2} too high for d = 3000"
    );
    assert!(report.bytes_to_client > 0);
    assert_eq!(report.rounds, 1, "the rateless flow pays a single request");
}

#[test]
fn keyed_reconciliation_resists_checksum_collisions_from_unkeyed_inputs() {
    // Two parties agree on a secret key; reconciliation works exactly as
    // with the default key.
    let key = SipKey::new(0x5ec2e7, 0x4e1);
    let (alice, bob, expected) = sets(2_000, 40, 0xbad);
    let mut enc = Encoder::<Item>::with_key(key);
    for x in &alice {
        enc.add_symbol(*x).unwrap();
    }
    let mut dec = Decoder::<Item>::with_key(key);
    for x in &bob {
        dec.add_symbol(*x).unwrap();
    }
    let mut used = 0;
    while !dec.is_decoded() {
        dec.add_coded_symbol(enc.produce_next_coded_symbol());
        used += 1;
        assert!(used < 10_000);
    }
    assert_eq!(as_set(&dec.into_difference()), expected);
}

#[test]
fn rateless_prefix_property_across_peers() {
    // The same coded-symbol prefix (universality) serves two peers whose
    // differences have very different sizes.
    let (alice, bob_small, expected_small) = sets(3_000, 10, 0x99);
    let (_, bob_large, expected_large) = sets(3_000, 600, 0x99);

    let mut enc = Encoder::<Item>::new();
    for x in &alice {
        enc.add_symbol(*x).unwrap();
    }
    let stream: Vec<_> = enc.produce_coded_symbols(2_000);

    for (bob, expected) in [(bob_small, expected_small), (bob_large, expected_large)] {
        let mut dec = Decoder::<Item>::new();
        for x in &bob {
            dec.add_symbol(*x).unwrap();
        }
        let mut used = 0;
        for cs in &stream {
            if dec.is_decoded() {
                break;
            }
            dec.add_coded_symbol(cs.clone());
            used += 1;
        }
        assert!(dec.is_decoded(), "prefix of length 2000 should suffice");
        assert_eq!(as_set(&dec.into_difference()), expected);
        assert!(used <= 2_000);
    }
}
