//! Pins the decoder's observable behavior across the hot-path refactor.
//!
//! The allocation-free peeling rewrite (cached peel states, clone-free
//! recover, pre-reserved buffers) must not change *what* the decoder
//! computes — only how fast. These tests capture the pre-refactor behavior
//! on pinned seeds: the exact number of coded symbols each scenario needs
//! before `is_decoded()` flips, and the exact remote/local split. Any drift
//! in these numbers means the refactor changed decoding semantics, not just
//! its constant factors.

use std::collections::BTreeSet;

use rateless_reconciliation::riblt::{
    Decoder, Encoder, FixedBytes, IrregularDecoder, IrregularEncoder, Sketch,
};
use rateless_reconciliation::riblt_hash::SplitMix64;

type Item8 = FixedBytes<8>;
type Item32 = FixedBytes<32>;

/// Draws `len` distinct values in `1..bound` from the pinned stream.
fn draw_set(gen: &mut SplitMix64, bound: u64, len: usize) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    while out.len() < len {
        out.insert(1 + gen.next_u64() % (bound - 1));
    }
    out
}

fn item32(v: u64) -> Item32 {
    let mut bytes = [0u8; 32];
    let mut gen = SplitMix64::new(v | 1);
    gen.fill_bytes(&mut bytes);
    FixedBytes(bytes)
}

/// Runs one regular-decoder scenario to completion; returns the number of
/// coded symbols consumed plus the recovered remote/local value sets.
fn run_streaming8(seed: u64, n_a: usize, n_b: usize) -> (usize, BTreeSet<u64>, BTreeSet<u64>) {
    let mut gen = SplitMix64::new(seed);
    let a = draw_set(&mut gen, 1 << 40, n_a);
    let b = draw_set(&mut gen, 1 << 40, n_b);

    let mut enc = Encoder::<Item8>::new();
    for &v in &a {
        enc.add_symbol(Item8::from_u64(v)).unwrap();
    }
    let mut dec = Decoder::<Item8>::new();
    for &v in &b {
        dec.add_symbol(Item8::from_u64(v)).unwrap();
    }
    let mut used = 0usize;
    while !dec.is_decoded() {
        dec.add_coded_symbol(enc.produce_next_coded_symbol());
        used += 1;
        assert!(used < 100_000, "seed {seed:#x}: failed to converge");
    }
    let diff = dec.into_difference();
    let remote: BTreeSet<u64> = diff.remote_only.iter().map(|s| s.to_u64()).collect();
    let local: BTreeSet<u64> = diff.local_only.iter().map(|s| s.to_u64()).collect();

    // Cross-check against ground truth before pinning anything.
    let expected_remote: BTreeSet<u64> = a.difference(&b).copied().collect();
    let expected_local: BTreeSet<u64> = b.difference(&a).copied().collect();
    assert_eq!(remote, expected_remote, "seed {seed:#x}: remote side");
    assert_eq!(local, expected_local, "seed {seed:#x}: local side");
    (used, remote, local)
}

/// The streaming decoder consumes exactly the pre-refactor number of coded
/// symbols on pinned seeds (8-byte items, varied overlap shapes).
#[test]
fn streaming_decoder_used_counts_are_pinned() {
    // (seed, |A|, |B|) -> coded symbols consumed, captured before the
    // hot-path refactor. d ranges from 5 to ~600 across the cases.
    let cases: [(u64, usize, usize, usize); 6] = [
        (0xa11c_e001, 300, 300, 828),
        (0xa11c_e002, 500, 480, 1_319),
        (0xa11c_e003, 50, 45, 136),
        (0xa11c_e004, 1, 4, 9),
        (0xa11c_e005, 0, 64, 94),
        (0xa11c_e006, 1_000, 1_000, 2_672),
    ];
    for (seed, n_a, n_b, pinned_used) in cases {
        let (used, _, _) = run_streaming8(seed, n_a, n_b);
        assert_eq!(
            used, pinned_used,
            "seed {seed:#x} (|A|={n_a}, |B|={n_b}): used-symbol count drifted"
        );
    }
}

/// 32-byte items through the batch API: identical sets and used counts.
#[test]
fn batch_decoder_is_pinned_for_32_byte_items() {
    let mut gen = SplitMix64::new(0xb47c_9000);
    let a = draw_set(&mut gen, 1 << 40, 400);
    let b = draw_set(&mut gen, 1 << 40, 380);

    let mut enc = Encoder::<Item32>::new();
    for &v in &a {
        enc.add_symbol(item32(v)).unwrap();
    }
    let mut dec = Decoder::<Item32>::new();
    for &v in &b {
        dec.add_symbol(item32(v)).unwrap();
    }
    let mut used_total = 0usize;
    while !dec.is_decoded() {
        let batch = enc.produce_coded_symbols(32);
        used_total += dec.add_coded_symbols(batch);
        assert!(used_total < 100_000, "failed to converge");
    }
    // Captured pre-refactor: the batch path stops inside the final batch.
    assert_eq!(used_total, 1_064, "batch used-symbol count drifted");

    let diff = dec.into_difference();
    let remote: BTreeSet<Item32> = a.difference(&b).map(|&v| item32(v)).collect();
    let local: BTreeSet<Item32> = b.difference(&a).map(|&v| item32(v)).collect();
    assert_eq!(
        diff.remote_only.iter().copied().collect::<BTreeSet<_>>(),
        remote
    );
    assert_eq!(
        diff.local_only.iter().copied().collect::<BTreeSet<_>>(),
        local
    );
}

/// Sketch::decode (the fixed-size path) recovers the same split and stays
/// byte-stable on a pinned seed.
#[test]
fn sketch_decode_is_pinned() {
    let mut gen = SplitMix64::new(0x5ce7_c400);
    let a = draw_set(&mut gen, 1 << 40, 250);
    let b = draw_set(&mut gen, 1 << 40, 260);
    let d = a.symmetric_difference(&b).count();

    let m = 2 * d + 8;
    let sa = Sketch::<Item8>::from_set(
        m,
        a.iter()
            .map(|&v| Item8::from_u64(v))
            .collect::<Vec<_>>()
            .iter(),
    );
    let sb = Sketch::<Item8>::from_set(
        m,
        b.iter()
            .map(|&v| Item8::from_u64(v))
            .collect::<Vec<_>>()
            .iter(),
    );
    let diff = sa.subtracted(&sb).unwrap().decode().unwrap();

    let remote: BTreeSet<u64> = diff.remote_only.iter().map(|s| s.to_u64()).collect();
    let local: BTreeSet<u64> = diff.local_only.iter().map(|s| s.to_u64()).collect();
    assert_eq!(remote, a.difference(&b).copied().collect::<BTreeSet<_>>());
    assert_eq!(local, b.difference(&a).copied().collect::<BTreeSet<_>>());
}

/// The irregular decoder (per-class alphas) consumes the pre-refactor
/// number of coded symbols and recovers the identical split.
#[test]
fn irregular_decoder_used_count_is_pinned() {
    let mut gen = SplitMix64::new(0x1e8_0a77);
    let a = draw_set(&mut gen, 1 << 40, 350);
    let b = draw_set(&mut gen, 1 << 40, 340);

    let mut enc = IrregularEncoder::<Item8>::new();
    for &v in &a {
        enc.add_symbol(Item8::from_u64(v)).unwrap();
    }
    let mut dec = IrregularDecoder::<Item8>::new();
    for &v in &b {
        dec.add_symbol(Item8::from_u64(v)).unwrap();
    }
    let mut used = 0usize;
    while !dec.is_decoded() {
        dec.add_coded_symbol(enc.produce_next_coded_symbol());
        used += 1;
        assert!(used < 100_000, "failed to converge");
    }
    assert_eq!(used, 777, "irregular used-symbol count drifted");

    let diff = dec.into_difference();
    let remote: BTreeSet<u64> = diff.remote_only.iter().map(|s| s.to_u64()).collect();
    let local: BTreeSet<u64> = diff.local_only.iter().map(|s| s.to_u64()).collect();
    assert_eq!(remote, a.difference(&b).copied().collect::<BTreeSet<_>>());
    assert_eq!(local, b.difference(&a).copied().collect::<BTreeSet<_>>());
}
