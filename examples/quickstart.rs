//! Quickstart: reconcile two sets with Rateless IBLT.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Shows both APIs:
//! 1. the streaming `Encoder`/`Decoder` pair (Alice streams coded symbols
//!    until Bob signals completion), and
//! 2. the one-shot `Sketch` API (build, subtract, decode).

use riblt::{Decoder, Encoder, FixedBytes, Sketch};

type Item = FixedBytes<32>;

fn item(i: u64) -> Item {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&i.to_le_bytes());
    bytes[8..16].copy_from_slice(&i.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
    FixedBytes(bytes)
}

fn main() {
    // Alice holds 100,000 items; Bob holds the same set except that he is
    // missing 20 of Alice's items and has 15 items of his own.
    let alice_set: Vec<Item> = (0..100_000).map(item).collect();
    let bob_set: Vec<Item> = (20..100_015).map(item).collect();

    // --- Streaming API -----------------------------------------------------
    let mut alice = Encoder::<Item>::new();
    for x in &alice_set {
        alice.add_symbol(*x).unwrap();
    }
    let mut bob = Decoder::<Item>::new();
    for x in &bob_set {
        bob.add_symbol(*x).unwrap();
    }

    let mut sent = 0;
    while !bob.is_decoded() {
        bob.add_coded_symbol(alice.produce_next_coded_symbol());
        sent += 1;
    }
    let diff = bob.into_difference();
    println!("streaming API:");
    println!("  coded symbols sent      : {sent}");
    println!("  items Bob was missing   : {}", diff.remote_only.len());
    println!("  items Alice was missing : {}", diff.local_only.len());
    println!(
        "  overhead                : {:.2} coded symbols per difference",
        sent as f64 / diff.len() as f64
    );

    // --- Sketch API --------------------------------------------------------
    // A fixed-size sketch is convenient when the application wants a single
    // message; peeling wants ≈1.35–2× headroom over the difference, and a
    // fixed sketch cannot be extended, so size generously: 128 coded symbols
    // for the 35 differences here.
    let m = 128;
    let sketch_a = Sketch::from_set(m, alice_set.iter());
    let sketch_b = Sketch::from_set(m, bob_set.iter());
    let diff = sketch_a.subtracted(&sketch_b).unwrap().decode().unwrap();
    println!("sketch API:");
    println!(
        "  one {m}-symbol sketch ({} bytes of sums) recovered {} differences",
        m * 32,
        diff.len()
    );
}
