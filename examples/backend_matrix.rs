//! One scenario, every scheme: the `ReconcileBackend` trait in action.
//!
//! Run with `cargo run --release --example backend_matrix`.
//!
//! Reconciles the same pair of 10,000-item sets (difference 200) through
//! each backend in the workspace using the same generic session engine, and
//! prints what each scheme paid — the architectural form of the paper's §7
//! comparison: identical protocol conditions, costs differing only by
//! scheme.

use reconcile_core::backends::{
    IbltBackend, IrregularRibltBackend, MetIbltBackend, PinSketchBackend, RibltBackend,
};
use reconcile_core::{run_in_memory, ReconcileBackend, RunReport};
use riblt::FixedBytes;
use riblt_hash::splitmix64;

type Item = FixedBytes<8>;

fn report_line(name: &str, d: usize, r: &RunReport<Item>) {
    println!(
        "{name:<18} {:>6} units {:>9} B down {:>7} B up {:>4} rounds   ({:.2} units/diff)",
        r.units,
        r.bytes_to_client,
        r.bytes_to_server,
        r.rounds,
        r.units as f64 / d as f64,
    );
}

fn main() {
    let n = 10_000u64;
    let d_each = 100u64; // per-side exclusives → |A △ B| = 200
    let universe: Vec<Item> = (0..n + d_each)
        .map(|i| Item::from_u64(splitmix64(i + 1) | 1))
        .collect();
    let alice: Vec<Item> = universe[..n as usize].to_vec();
    let bob: Vec<Item> = universe[d_each as usize..].to_vec();
    let d = 2 * d_each as usize;
    println!("reconciling two {n}-item sets with {d} differences through every backend:\n");

    let run = |name: &'static str, report: RunReport<Item>| {
        assert_eq!(
            report.difference.len(),
            d,
            "{name} recovered a wrong difference"
        );
        report_line(name, d, &report);
    };

    let b = RibltBackend::<Item>::new(8, 32);
    run(
        b.name(),
        run_in_memory(b.clone(), &alice, &bob, 100_000).unwrap(),
    );

    let b = IrregularRibltBackend::<Item>::new(8, 32);
    run(
        b.name(),
        run_in_memory(b.clone(), &alice, &bob, 100_000).unwrap(),
    );

    let b = IbltBackend::<Item>::new(8);
    run(
        b.name(),
        run_in_memory(b.clone(), &alice, &bob, 100_000).unwrap(),
    );

    let b = MetIbltBackend::<Item>::new(8);
    run(
        b.name(),
        run_in_memory(b.clone(), &alice, &bob, 100_000).unwrap(),
    );

    let b = PinSketchBackend::new(64);
    run(
        b.name(),
        run_in_memory(b.clone(), &alice, &bob, 100_000).unwrap(),
    );

    println!(
        "\nunits are scheme-specific (coded symbols / cells / syndromes); \
         the difference recovered is identical for every backend."
    );
}
