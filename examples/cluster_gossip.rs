//! An 8-node sharded reconciliation cluster converging by gossip.
//!
//! Run with `cargo run --release --example cluster_gossip`.
//!
//! Every node hash-partitions its keys into 16 shards and keeps one
//! incrementally-maintained coded-symbol cache per shard; a gossip round has
//! each node reconcile all 16 shards with one random peer over a single
//! multiplexed link, decoding the shards on a worker pool. Writes keep
//! landing on random nodes for the first rounds (churn) — the cluster still
//! converges to identical sets a few rounds after the writes stop.

use cluster::{Cluster, ClusterConfig, NodeConfig, PairSyncConfig};
use netsim::LinkConfig;
use riblt::FixedBytes;
use riblt_hash::SplitMix64;

type Item = FixedBytes<32>;

fn fresh_item(rng: &mut SplitMix64) -> Item {
    let mut bytes = [0u8; 32];
    rng.fill_bytes(&mut bytes);
    FixedBytes(bytes)
}

fn main() {
    const NODES: usize = 8;
    const SHARDS: u16 = 16;
    let mut cluster = Cluster::<Item>::new(ClusterConfig {
        nodes: NODES,
        node: NodeConfig::new(SHARDS, 32),
        link: LinkConfig::paper_default(),
        pair: PairSyncConfig::default(),
        seed: 0xfeed,
    });
    let mut rng = SplitMix64::new(0x5eed);

    // Replicated history plus some writes only the accepting node has seen.
    for _ in 0..5_000 {
        let item = fresh_item(&mut rng);
        for node in 0..NODES {
            cluster.insert_at(node, item);
        }
    }
    for node in 0..NODES {
        for _ in 0..150 {
            let item = fresh_item(&mut rng);
            cluster.insert_at(node, item);
        }
    }
    println!(
        "[setup] {NODES} nodes x {SHARDS} shards, {} items on node 0, cluster diverged",
        cluster.node(0).len()
    );

    // Three rounds with churn: writes keep arriving while gossip runs.
    for _ in 0..3 {
        for _ in 0..200 {
            let node = rng.next_below(NODES as u64) as usize;
            let item = fresh_item(&mut rng);
            cluster.insert_at(node, item);
        }
        let report = cluster.run_round().expect("gossip round");
        println!(
            "[round {}] {} exchanges moved {} items ({} coded symbols, {:.2} MB), churn ongoing",
            report.round,
            report.exchanges,
            report.items_moved,
            report.units,
            report.bytes as f64 / 1e6
        );
    }

    // Churn stops; run until every node holds the identical set.
    let report = cluster.run_until_converged(30).expect("convergence run");
    assert!(report.converged, "cluster failed to converge");
    println!(
        "[done] converged after {} total rounds: {} items everywhere, {:.2} MB total, \
         {:.1}s virtual time",
        cluster.rounds(),
        cluster.node(0).len(),
        report.total_bytes as f64 / 1e6,
        report.virtual_time_s
    );
    for (id, stats) in report.node_stats.iter().enumerate() {
        println!(
            "  node {id}: {:.2} MB sent, {:.2} MB received, {:.1} ms decode CPU",
            stats.bytes_sent as f64 / 1e6,
            stats.bytes_received as f64 / 1e6,
            stats.decode_s * 1e3
        );
    }
}
