//! Anti-entropy between two replicas of a key-value store.
//!
//! Run with `cargo run --release --example kv_store_antientropy`.
//!
//! Two replicas accept writes independently (here: disjoint batches of
//! updates, as during a network partition) and periodically run a
//! reconciliation round through the generic session engine with the
//! Rateless IBLT backend. Each record is serialized to a fixed-width item
//! (16-byte key, 48-byte value, 8-byte version); the replica with the
//! higher version wins, so reconciliation converges both stores to the same
//! state.

use std::collections::BTreeMap;

use reconcile_core::backends::RibltBackend;
use reconcile_core::run_in_memory;
use riblt::FixedBytes;
use riblt_hash::SplitMix64;

const KEY_LEN: usize = 16;
const VALUE_LEN: usize = 48;
const RECORD_LEN: usize = KEY_LEN + VALUE_LEN + 8;

type Record = FixedBytes<RECORD_LEN>;
type Store = BTreeMap<[u8; KEY_LEN], ([u8; VALUE_LEN], u64)>;

fn record(key: &[u8; KEY_LEN], value: &[u8; VALUE_LEN], version: u64) -> Record {
    let mut bytes = [0u8; RECORD_LEN];
    bytes[..KEY_LEN].copy_from_slice(key);
    bytes[KEY_LEN..KEY_LEN + VALUE_LEN].copy_from_slice(value);
    bytes[KEY_LEN + VALUE_LEN..].copy_from_slice(&version.to_le_bytes());
    FixedBytes(bytes)
}

fn split(record: &Record) -> ([u8; KEY_LEN], [u8; VALUE_LEN], u64) {
    let mut key = [0u8; KEY_LEN];
    let mut value = [0u8; VALUE_LEN];
    key.copy_from_slice(&record.0[..KEY_LEN]);
    value.copy_from_slice(&record.0[KEY_LEN..KEY_LEN + VALUE_LEN]);
    let mut v = [0u8; 8];
    v.copy_from_slice(&record.0[KEY_LEN + VALUE_LEN..]);
    (key, value, u64::from_le_bytes(v))
}

fn items(store: &Store) -> Vec<Record> {
    store
        .iter()
        .map(|(k, (v, ver))| record(k, v, *ver))
        .collect()
}

fn apply_remote(store: &mut Store, remote_records: &[Record]) {
    for r in remote_records {
        let (key, value, version) = split(r);
        match store.get(&key) {
            Some((_, local_version)) if *local_version >= version => {}
            _ => {
                store.insert(key, (value, version));
            }
        }
    }
}

fn synth_key(i: u64) -> [u8; KEY_LEN] {
    let mut g = SplitMix64::new(i ^ 0x6b65);
    let mut k = [0u8; KEY_LEN];
    g.fill_bytes(&mut k);
    k
}

fn synth_value(i: u64, version: u64) -> [u8; VALUE_LEN] {
    let mut g = SplitMix64::new(i ^ (version << 40) ^ 0x76616c);
    let mut v = [0u8; VALUE_LEN];
    g.fill_bytes(&mut v);
    v
}

fn main() {
    // Common history: 30,000 keys replicated on both sides.
    let mut replica_a: Store = (0..30_000u64)
        .map(|i| (synth_key(i), (synth_value(i, 0), 0)))
        .collect();
    let mut replica_b = replica_a.clone();

    // A partition happens; each side keeps accepting writes.
    for i in 0..400u64 {
        replica_a.insert(synth_key(i), (synth_value(i, 1), 1)); // updates
    }
    for i in 30_000..30_250u64 {
        replica_b.insert(synth_key(i), (synth_value(i, 0), 0)); // fresh keys
    }
    println!(
        "[setup] replica A: {} records, replica B: {} records",
        replica_a.len(),
        replica_b.len()
    );

    // Anti-entropy round 1: A serves, B reconciles.
    let backend = RibltBackend::<Record>::new(RECORD_LEN, 32);
    let report =
        run_in_memory(backend, &items(&replica_a), &items(&replica_b), 100_000).expect("reconcile");
    let diff = report.difference;
    println!(
        "[round 1] B learned {} records, sent back knowledge of {} records \
         ({} coded symbols, {} bytes on the wire)",
        diff.remote_only.len(),
        diff.local_only.len(),
        report.units,
        report.bytes_to_client + report.bytes_to_server,
    );
    apply_remote(&mut replica_b, &diff.remote_only);
    // B now also knows exactly which records A is missing and pushes them.
    apply_remote(&mut replica_a, &diff.local_only);

    assert_eq!(items(&replica_a), items(&replica_b));
    println!(
        "[done] replicas converged to {} identical records",
        replica_a.len()
    );
}
