//! Blockchain ledger synchronization over a real TCP connection on
//! localhost — the paper's §7.3 application, end to end.
//!
//! Run with `cargo run --release --example blockchain_state_sync`.
//!
//! A "full node" (Alice) holds the latest synthetic ledger and listens on a
//! TCP port. A "stale replica" (Bob) holds a snapshot from 50 blocks ago,
//! connects, receives a stream of coded symbols, decodes the difference,
//! applies it, and verifies that its Merkle root now matches Alice's.

use std::net::{TcpListener, TcpStream};
use std::thread;

use netsim::{read_frame, write_frame};
use riblt::{Decoder, Encoder, SymbolCodec};
use statesync::{Chain, ChainConfig, Ledger, LedgerItem, ITEM_LEN};

const BATCH_SYMBOLS: usize = 64;

fn serve(listener: TcpListener, latest: Ledger) {
    let (mut conn, peer) = listener.accept().expect("accept");
    println!("[alice] replica connected from {peer}");
    // Wait for the sync request, then stream coded symbols until the
    // replica closes the connection (or sends the 1-byte stop message).
    let _request = read_frame(&mut conn).expect("request");
    let mut encoder = Encoder::<LedgerItem>::new();
    for item in latest.items() {
        encoder.add_symbol(item).unwrap();
    }
    let codec = SymbolCodec::new(ITEM_LEN, latest.len() as u64);
    let mut sent = 0usize;
    loop {
        let start = encoder.next_index();
        let batch = encoder.produce_coded_symbols(BATCH_SYMBOLS);
        let payload = codec.encode_batch(&batch, start);
        if write_frame(&mut conn, &payload).is_err() {
            break; // peer closed: it decoded everything it needed
        }
        sent += BATCH_SYMBOLS;
        // Check for a stop message without blocking the stream.
        conn.set_nonblocking(true).unwrap();
        if read_frame(&mut conn).is_ok() {
            println!("[alice] replica signalled completion after {sent} coded symbols");
            break;
        }
        conn.set_nonblocking(false).unwrap();
    }
}

fn main() {
    // Build the chain: genesis plus 50 blocks of churn.
    let chain = Chain::generate(
        ChainConfig {
            genesis_accounts: 20_000,
            ..ChainConfig::laptop_scale()
        },
        50,
    );
    let latest = chain.snapshot_at(50);
    let stale = chain.snapshot_at(0);
    let expected_root = latest.to_trie().root();
    println!(
        "[setup] ledger: {} accounts, stale replica is 50 blocks ({} item differences) behind",
        latest.len(),
        latest.item_difference(&stale)
    );

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server_latest = latest.clone();
    let server = thread::spawn(move || serve(listener, server_latest));

    // --- Bob, the stale replica -------------------------------------------
    let mut conn = TcpStream::connect(addr).expect("connect");
    write_frame(&mut conn, b"sync please").unwrap();
    let mut decoder = Decoder::<LedgerItem>::new();
    for item in stale.items() {
        decoder.add_symbol(item).unwrap();
    }
    let codec = SymbolCodec::new(ITEM_LEN, 0);
    let mut received_symbols = 0usize;
    let mut received_bytes = 0usize;
    while !decoder.is_decoded() {
        let payload = read_frame(&mut conn).expect("coded symbol batch");
        received_bytes += payload.len();
        let batch = codec.decode_batch::<LedgerItem>(&payload).expect("batch");
        for cs in batch.symbols {
            if decoder.is_decoded() {
                break;
            }
            decoder.add_coded_symbol(cs);
            received_symbols += 1;
        }
    }
    let _ = write_frame(&mut conn, b"done");
    drop(conn);

    let diff = decoder.into_difference();
    let mut updated = stale.clone();
    updated.apply_items(&diff.remote_only);
    let new_root = updated.to_trie().root();
    println!(
        "[bob] decoded {} differences from {received_symbols} coded symbols ({received_bytes} bytes)",
        diff.len()
    );
    println!(
        "[bob] ledger root after sync matches the network: {}",
        new_root == expected_root
    );
    assert_eq!(new_root, expected_root, "synchronized ledger must match");
    let _ = server.join();
}
