//! Blockchain ledger synchronization over a real TCP connection on
//! localhost — the paper's §7.3 application, end to end.
//!
//! Run with `cargo run --release --example blockchain_state_sync`.
//!
//! A "full node" (Alice) holds the latest synthetic ledger and listens on a
//! TCP port. A "stale replica" (Bob) holds a snapshot from 50 blocks ago,
//! connects, receives a stream of coded symbols, decodes the difference,
//! applies it, and verifies that its Merkle root now matches Alice's.
//!
//! Both endpoints are the generic session engine from `reconcile-core` with
//! the Rateless IBLT backend plugged in; TCP only moves its opaque frames.
//! The serve loop below implements the *streaming* flow (push payloads,
//! poll for a stop frame), so `RibltBackend` is swappable for any other
//! streaming backend (e.g. `IrregularRibltBackend`) without further
//! changes; interactive backends (MET-IBLT, IBLT + estimator) would need a
//! request/response loop that answers `EngineMessage::Request` frames
//! instead.

use std::net::{TcpListener, TcpStream};
use std::thread;

use reconcile_core::backends::RibltBackend;
use reconcile_core::framing::{read_frame, write_frame};
use reconcile_core::{ClientEngine, EngineMessage, ServerEngine};
use statesync::{Chain, ChainConfig, Ledger, LedgerItem, ITEM_LEN};

const BATCH_SYMBOLS: usize = 64;

fn backend() -> RibltBackend<LedgerItem> {
    RibltBackend::new(ITEM_LEN, BATCH_SYMBOLS)
}

fn serve(listener: TcpListener, latest: Ledger) {
    let (mut conn, peer) = listener.accept().expect("accept");
    println!("[alice] replica connected from {peer}");
    let mut engine = ServerEngine::new(backend(), &latest.items());

    // Wait for the opening request, then stream coded symbols until the
    // replica signals completion (or closes the connection).
    let open = EngineMessage::from_frame(&read_frame(&mut conn).expect("open frame"))
        .expect("well-formed open");
    let mut next = engine.handle(&open).expect("serve").expect("first payload");
    let mut sent_batches = 0usize;
    loop {
        if write_frame(&mut conn, &next.to_frame()).is_err() {
            break; // peer closed: it decoded everything it needed
        }
        sent_batches += 1;
        // Check for a stop message without blocking the stream.
        conn.set_nonblocking(true).unwrap();
        if let Ok(frame) = read_frame(&mut conn) {
            if let Ok(msg @ EngineMessage::Done) = EngineMessage::from_frame(&frame) {
                engine.handle(&msg).expect("done");
                println!(
                    "[alice] replica signalled completion after {} coded symbols",
                    sent_batches * BATCH_SYMBOLS
                );
                break;
            }
        }
        conn.set_nonblocking(false).unwrap();
        next = engine.next_payload().expect("stream");
    }
}

fn main() {
    // Build the chain: genesis plus 50 blocks of churn.
    let chain = Chain::generate(
        ChainConfig {
            genesis_accounts: 20_000,
            ..ChainConfig::laptop_scale()
        },
        50,
    );
    let latest = chain.snapshot_at(50);
    let stale = chain.snapshot_at(0);
    let expected_root = latest.to_trie().root();
    println!(
        "[setup] ledger: {} accounts, stale replica is 50 blocks ({} item differences) behind",
        latest.len(),
        latest.item_difference(&stale)
    );

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server_latest = latest.clone();
    let server = thread::spawn(move || serve(listener, server_latest));

    // --- Bob, the stale replica -------------------------------------------
    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut engine = ClientEngine::new(backend(), &stale.items());
    write_frame(&mut conn, &engine.open().to_frame()).unwrap();
    let mut received_bytes = 0usize;
    while !engine.is_done() {
        let frame = read_frame(&mut conn).expect("coded symbol batch");
        received_bytes += frame.len();
        let payload = EngineMessage::from_frame(&frame).expect("well-formed payload");
        if let Some(reply) = engine.handle(&payload).expect("absorb") {
            let _ = write_frame(&mut conn, &reply.to_frame());
        }
    }
    let received_symbols = engine.units();
    drop(conn);

    let diff = engine.into_difference().expect("complete difference");
    let mut updated = stale.clone();
    updated.apply_items(&diff.remote_only);
    let new_root = updated.to_trie().root();
    println!(
        "[bob] decoded {} differences from {received_symbols} coded symbols ({received_bytes} bytes)",
        diff.len()
    );
    println!(
        "[bob] ledger root after sync matches the network: {}",
        new_root == expected_root
    );
    assert_eq!(new_root, expected_root, "synchronized ledger must match");
    let _ = server.join();
}
