//! Universality demo: one node serves the *same* cached coded symbols to
//! many peers with different (and differently sized) set differences.
//!
//! Run with `cargo run --release --example multi_peer_sync`.
//!
//! This is the deployment §2 and §7.3 of the paper motivate: the serving
//! node maintains a single coded-symbol cache, patches it incrementally as
//! its set changes, and streams prefixes of it to whoever asks — no
//! per-peer encoding work, no parameter negotiation.

use riblt::{Decoder, FixedBytes, SketchCache};

type Item = FixedBytes<16>;

fn item(i: u64) -> Item {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&i.to_le_bytes());
    bytes[8..].copy_from_slice(&(!i).to_le_bytes());
    FixedBytes(bytes)
}

fn main() {
    // The server's set: 50,000 items, maintained in a SketchCache with a
    // materialized prefix of 4,096 coded symbols.
    let mut cache = SketchCache::<Item>::new();
    for i in 0..50_000u64 {
        cache.add_symbol(item(i));
    }
    cache.ensure_len(4_096);

    // The server's set changes: 100 items replaced. The cache is patched in
    // place — each update touches only O(log m) coded symbols.
    for i in 0..100u64 {
        cache.remove_symbol(item(i));
        cache.add_symbol(item(1_000_000 + i));
    }

    // Three peers with very different staleness.
    let peers: Vec<(&str, Vec<Item>)> = vec![
        ("peer-fresh (3 missing items)", {
            let mut set: Vec<Item> = (3..50_000).map(item).collect();
            set.extend((1_000_000..1_000_100).map(item));
            set
        }),
        (
            "peer-stale (the 200-item update)",
            (0..50_000).map(item).collect(),
        ),
        (
            "peer-tiny (knows only half the set)",
            (25_000..50_000).map(item).collect(),
        ),
    ];

    for (name, set) in peers {
        let mut decoder = Decoder::<Item>::new();
        for x in &set {
            decoder.add_symbol(*x).unwrap();
        }
        // Stream the same universal prefix to every peer; each consumes only
        // as much as it needs.
        let mut used = 0;
        for cs in cache.cells() {
            if decoder.is_decoded() {
                break;
            }
            decoder.add_coded_symbol(cs.clone());
            used += 1;
        }
        if !decoder.is_decoded() {
            // A very stale peer needs a longer prefix: extend the cache once
            // and keep serving everyone from it.
            cache.ensure_len(80_000);
            for cs in &cache.cells()[used..] {
                if decoder.is_decoded() {
                    break;
                }
                decoder.add_coded_symbol(cs.clone());
                used += 1;
            }
        }
        let diff = decoder.into_difference();
        println!(
            "{name}: decoded {} differences from {used} coded symbols ({:.2} per difference)",
            diff.len(),
            used as f64 / diff.len().max(1) as f64
        );
    }
}
